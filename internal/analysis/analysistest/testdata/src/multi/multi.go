// Corpus for multi-analyzer runs: one package with findings from two
// analyzers, including a line carrying both a lock-order edge and an
// unversioned cache insertion, and a single waiver suppressing findings
// from both analyzers at once.
package multi

import "sync"

type LRU[K comparable, V any] struct{ m map[K]V }

func (l *LRU[K, V]) Put(k K, v V) {
	if l.m == nil {
		l.m = map[K]V{}
	}
	l.m[k] = v
}

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

type Cache struct{ lru LRU[string, int] }

// Findings from two analyzers in one run.
func ab(a *A, b *B, c *Cache, name string) {
	a.mu.Lock()
	b.mu.Lock()        // want "acquires B.mu while holding A.mu"
	c.lru.Put(name, 1) // want "cache key does not fold in a data version"
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "acquires A.mu while holding B.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// One waiver line suppresses the findings of both analyzers at once.
func cd(c *C, d *D, ca *Cache, name string) {
	c.mu.Lock()
	d.mu.Lock(); ca.lru.Put(name, 2) //mixvet:ignore startup path: single-threaded, immutable corpus
	d.mu.Unlock()
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() //mixvet:ignore startup path: single-threaded
	c.mu.Unlock()
	d.mu.Unlock()
}

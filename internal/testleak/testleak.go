// Package testleak asserts that a test leaves no goroutines behind — the
// guard the parallel evaluation layer's tests use to prove that every
// exchange producer, build-side drain and async source scan is joined by the
// time a result is exhausted or closed.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and returns a function that asserts
// the count has returned to (or below) the snapshot. Producers are joined
// synchronously by Close, but runtime bookkeeping (and goroutines finishing
// their final returns) can lag a moment, so the assertion polls briefly
// before failing. Use as:
//
//	defer testleak.Check(t)()
func Check(t testing.TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
	}
}

// NoHandles asserts that a live-handle counter (such as the wire server's
// LiveHandles) drains to zero — the proof that every session wound down and
// released its node-handle table. Like Check it polls briefly: handle
// release rides on connection teardown, which can lag the client's Close by
// a scheduler beat. Use at test end, after closing the client:
//
//	defer func() { testleak.NoHandles(t, "server node handles", srv.LiveHandles) }()
func NoHandles(t testing.TB, what string, count func() int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var n int
	for {
		n = count()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("handle leak: %d %s still live at test end", n, what)
}

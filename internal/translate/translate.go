// Package translate turns an XQuery-subset AST into an XMAS algebra plan,
// following the three-step translation at the end of paper Section 3:
//
//  1. Each FOR subclause contributes a getD (over a mkSrc for document
//     sources, or spliced into the expression binding the range variable).
//  2. Each WHERE conjunct becomes a select when its variables live in one
//     expression of the current set, or a join combining two expressions;
//     leftover expressions are combined with a cartesian product.
//  3. The RETURN clause becomes crElt/cat/gBy/apply operators; a final tD
//     exports the result document.
//
// The worked example: the Figure 3 query translates to exactly the Figure 6
// plan (see the golden test TestFigure6Plan).
package translate

import (
	"fmt"

	"mix/internal/xmas"
	"mix/internal/xquery"
	"mix/internal/xtree"
)

// Result is a translated query.
type Result struct {
	// Plan is the full XMAS plan, rooted at a tD operator.
	Plan xmas.Op
	// RootVar is the variable the tD collects (one result root child per
	// binding of it).
	RootVar xmas.Var
	// Tags maps each variable to the element label its bindings carry
	// (the last label of the path that bound it). Decontextualization
	// needs the tag of the provenance variable.
	Tags map[xmas.Var]string
}

// Translate compiles q. resultRootID becomes the object id of the exported
// result root (the paper uses "rootv" for the view).
func Translate(q *xquery.Query, resultRootID string) (*Result, error) {
	t := &translator{
		tags:  map[xmas.Var]string{},
		names: map[string]int{},
	}
	op, rootVar, err := t.query(q, nil)
	if err != nil {
		return nil, err
	}
	plan := &xmas.TD{In: op, V: rootVar, RootID: resultRootID}
	if err := xmas.Validate(plan); err != nil {
		return nil, fmt.Errorf("translate: produced invalid plan: %w", err)
	}
	return &Result{Plan: plan, RootVar: rootVar, Tags: t.tags}, nil
}

// MustTranslate panics on error; for tests and fixtures.
func MustTranslate(q *xquery.Query, resultRootID string) *Result {
	r, err := Translate(q, resultRootID)
	if err != nil {
		panic(err)
	}
	return r
}

// expr is one member of the translation's "current set of expressions".
type expr struct {
	op   xmas.Op
	vars map[xmas.Var]bool
}

func (e *expr) has(v xmas.Var) bool { return e.vars[v] }

type translator struct {
	tags  map[xmas.Var]string
	names map[string]int
	nTemp int // counter for the $1, $2, ... WHERE temporaries
}

// fresh returns "$<prefix>" the first time, then "$<prefix>2", ...
func (t *translator) fresh(prefix string) xmas.Var {
	t.names[prefix]++
	if t.names[prefix] == 1 {
		return xmas.Var("$" + prefix)
	}
	return xmas.Var(fmt.Sprintf("$%s%d", prefix, t.names[prefix]))
}

// freshTemp returns the next numeric temporary ($1, $2, ...).
func (t *translator) freshTemp() xmas.Var {
	t.nTemp++
	return xmas.Var(fmt.Sprintf("$%d", t.nTemp))
}

// skolem returns successive skolem function symbols f, g, h, f4, f5, ...
func (t *translator) skolem() string {
	t.names["#skolem"]++
	n := t.names["#skolem"]
	if n <= 3 {
		return string(rune('f' + n - 1))
	}
	return fmt.Sprintf("f%d", n)
}

// query translates one FOR-WHERE-RETURN block. outer is non-nil for nested
// queries inside RETURN: it supplies the expression carrying the outer
// variables (a nestedSrc-based expression).
func (t *translator) query(q *xquery.Query, outer *expr) (xmas.Op, xmas.Var, error) {
	if len(q.For) == 0 {
		return nil, "", fmt.Errorf("translate: query has no FOR clause")
	}
	exprs, err := t.forClause(q.For, outer)
	if err != nil {
		return nil, "", err
	}
	combined, err := t.whereClause(q.Where, exprs)
	if err != nil {
		return nil, "", err
	}
	if len(q.OrderBy) > 0 {
		vars := make([]xmas.Var, len(q.OrderBy))
		for i, v := range q.OrderBy {
			vars[i] = xmas.Var(v)
			if !combined.has(vars[i]) {
				return nil, "", fmt.Errorf("translate: ORDER BY references unbound %s", v)
			}
		}
		combined.op = &xmas.OrderBy{In: combined.op, Vars: vars}
	}
	return t.returnClause(q.Return, combined)
}

// forClause implements translation step 1.
func (t *translator) forClause(bindings []xquery.ForBinding, outer *expr) ([]*expr, error) {
	var exprs []*expr
	if outer != nil {
		exprs = append(exprs, outer)
	}
	for _, fb := range bindings {
		v := xmas.Var(fb.Var)
		switch {
		case fb.Source != "":
			z := t.fresh("doc")
			src := &xmas.MkSrc{SrcID: fb.Source, Out: z}
			path := xmas.Path(fb.Path)
			getd := &xmas.GetD{In: src, From: z, Path: path, Out: v}
			t.tags[v] = path[len(path)-1]
			exprs = append(exprs, &expr{op: getd, vars: map[xmas.Var]bool{z: true, v: true}})
		case fb.FromVar != "":
			from := xmas.Var(fb.FromVar)
			host := findExpr(exprs, from)
			if host == nil {
				return nil, fmt.Errorf("translate: FOR variable %s ranges over unbound %s", fb.Var, fb.FromVar)
			}
			tag, ok := t.tags[from]
			if !ok {
				return nil, fmt.Errorf("translate: no label known for %s", fb.FromVar)
			}
			path := xmas.Path(fb.Path).Prepend(tag)
			host.op = &xmas.GetD{In: host.op, From: from, Path: path, Out: v}
			host.vars[v] = true
			t.tags[v] = path[len(path)-1]
		default:
			return nil, fmt.Errorf("translate: FOR binding for %s has no source", fb.Var)
		}
	}
	return exprs, nil
}

// findExpr returns the expression whose schema contains v, or nil.
func findExpr(exprs []*expr, v xmas.Var) *expr {
	for _, e := range exprs {
		if e.has(v) {
			return e
		}
	}
	return nil
}

// operand resolves one WHERE operand to an xmas operand, adding getD
// operators for path operands (the $1, $2 temporaries of Figure 6).
func (t *translator) operand(o xquery.Operand, exprs []*expr) (xmas.Operand, *expr, error) {
	if o.IsConst {
		return xmas.ConstOperand(o.Const), nil, nil
	}
	v := xmas.Var(o.Var)
	host := findExpr(exprs, v)
	if host == nil {
		return xmas.Operand{}, nil, fmt.Errorf("translate: WHERE references unbound %s", o.Var)
	}
	if len(o.Path) == 0 {
		return xmas.VarOperand(v), host, nil
	}
	tag, ok := t.tags[v]
	if !ok {
		return xmas.Operand{}, nil, fmt.Errorf("translate: no label known for %s", o.Var)
	}
	tmp := t.freshTemp()
	path := xmas.Path(o.Path).Prepend(tag)
	host.op = &xmas.GetD{In: host.op, From: v, Path: path, Out: tmp}
	host.vars[tmp] = true
	t.tags[tmp] = path[len(path)-1]
	return xmas.VarOperand(tmp), host, nil
}

// whereClause implements translation step 2 and returns the single combined
// expression.
func (t *translator) whereClause(conds []xquery.Condition, exprs []*expr) (*expr, error) {
	for _, c := range conds {
		left, lhost, err := t.operand(c.Left, exprs)
		if err != nil {
			return nil, err
		}
		right, rhost, err := t.operand(c.Right, exprs)
		if err != nil {
			return nil, err
		}
		cond := xmas.Cond{Left: left, Op: c.Op, Right: right}
		switch {
		case lhost == nil && rhost == nil:
			return nil, fmt.Errorf("translate: condition %s compares two constants", cond)
		case lhost != nil && rhost != nil && lhost != rhost:
			// Variables in different expressions: join them.
			join := &xmas.Join{L: lhost.op, R: rhost.op, Cond: &cond}
			merged := &expr{op: join, vars: map[xmas.Var]bool{}}
			for v := range lhost.vars {
				merged.vars[v] = true
			}
			for v := range rhost.vars {
				merged.vars[v] = true
			}
			exprs = replaceExprs(exprs, lhost, rhost, merged)
		default:
			host := lhost
			if host == nil {
				host = rhost
			}
			host.op = &xmas.Select{In: host.op, Cond: cond}
		}
	}
	// Combine leftovers with cartesian products.
	for len(exprs) > 1 {
		merged := &expr{op: &xmas.Join{L: exprs[0].op, R: exprs[1].op}, vars: map[xmas.Var]bool{}}
		for v := range exprs[0].vars {
			merged.vars[v] = true
		}
		for v := range exprs[1].vars {
			merged.vars[v] = true
		}
		exprs = replaceExprs(exprs, exprs[0], exprs[1], merged)
	}
	return exprs[0], nil
}

func replaceExprs(exprs []*expr, a, b, merged *expr) []*expr {
	out := exprs[:0]
	for _, e := range exprs {
		if e != a && e != b {
			out = append(out, e)
		}
	}
	return append(out, merged)
}

// returnClause implements translation step 3.
func (t *translator) returnClause(el xquery.Element, in *expr) (xmas.Op, xmas.Var, error) {
	switch x := el.(type) {
	case *xquery.VarRef:
		v := xmas.Var(x.Var)
		if !in.has(v) {
			return nil, "", fmt.Errorf("translate: RETURN references unbound %s", x.Var)
		}
		return in.op, v, nil
	case *xquery.ElemCtor:
		return t.buildCtor(x, in)
	}
	return nil, "", fmt.Errorf("translate: unsupported RETURN element %T", el)
}

// contribution is a per-tuple content item of a constructor.
type contribution struct {
	v      xmas.Var
	isList bool // true when v is bound to a list element (apply results)
	keyVar bool // true when v is (or depends only on) a group-by key
}

// buildCtor translates one element constructor over the expression in.
// It returns the updated expression-op and the variable bound to the
// constructed element.
func (t *translator) buildCtor(ctor *xquery.ElemCtor, in *expr) (xmas.Op, xmas.Var, error) {
	op := in.op

	// 1. Translate every child into a per-tuple contribution.
	contribs := make([]contribution, 0, len(ctor.Children))
	for _, child := range ctor.Children {
		switch c := child.(type) {
		case *xquery.VarRef:
			v := xmas.Var(c.Var)
			if !in.has(v) {
				return nil, "", fmt.Errorf("translate: constructor <%s> references unbound %s", ctor.Label, c.Var)
			}
			contribs = append(contribs, contribution{v: v})
		case *xquery.ElemCtor:
			in.op = op
			newOp, v, err := t.buildCtor(c, in)
			if err != nil {
				return nil, "", err
			}
			op = newOp
			in.op = op
			in.vars[v] = true
			contribs = append(contribs, contribution{v: v})
		case *xquery.Query:
			in.op = op
			newOp, v, err := t.nestedQuery(c, in)
			if err != nil {
				return nil, "", err
			}
			op = newOp
			in.op = op
			in.vars[v] = true
			contribs = append(contribs, contribution{v: v, isList: true})
		default:
			return nil, "", fmt.Errorf("translate: unsupported content %T in <%s>", child, ctor.Label)
		}
	}

	// 2. Decide whether this constructor groups. Grouping is needed when a
	// group-by list is present and some contribution varies within a group
	// (is not itself a key).
	keys := make([]xmas.Var, len(ctor.GroupBy))
	keySet := map[xmas.Var]bool{}
	for i, g := range ctor.GroupBy {
		keys[i] = xmas.Var(g)
		keySet[keys[i]] = true
		if !in.has(keys[i]) {
			return nil, "", fmt.Errorf("translate: group-by variable %s of <%s> is unbound", g, ctor.Label)
		}
	}
	needsGroup := false
	if len(keys) > 0 {
		for _, c := range contribs {
			if !keySet[c.v] {
				needsGroup = true
				break
			}
		}
	}

	var out xmas.Var
	if !needsGroup {
		// One element per tuple, skolemized by the group-by list (or, with
		// no list, by every variable in scope so each tuple's element is
		// distinct).
		skolemArgs := keys
		if len(skolemArgs) == 0 {
			skolemArgs = inVarsSorted(in)
		}
		children, newOp, err := t.concatContribs(op, contribs)
		if err != nil {
			return nil, "", err
		}
		op = newOp
		out = t.fresh("V")
		op = &xmas.CrElt{
			In: op, Label: ctor.Label, SkolemFn: t.skolem(),
			GroupVars: skolemArgs, Children: children, Out: out,
		}
		in.op = op
		in.vars[out] = true
		t.tags[out] = ctor.Label
		return op, out, nil
	}

	// 3. Grouped constructor: gBy on the keys, then collect each varying
	// contribution with an apply over the partition.
	partVars := op.Schema()
	part := t.fresh("X")
	op = &xmas.GroupBy{In: op, Keys: keys, Out: part}
	in.vars = map[xmas.Var]bool{part: true}
	for _, k := range keys {
		in.vars[k] = true
	}

	collected := make([]contribution, len(contribs))
	for i, c := range contribs {
		if keySet[c.v] {
			collected[i] = c
			collected[i].keyVar = true
			continue
		}
		lv := t.fresh("Z")
		nested := &xmas.TD{In: &xmas.NestedSrc{V: part, Vars: partVars}, V: c.v}
		op = &xmas.Apply{In: op, Plan: nested, InpVar: part, Out: lv}
		in.vars[lv] = true
		collected[i] = contribution{v: lv, isList: true}
	}
	in.op = op

	children, newOp, err := t.concatContribs(op, collected)
	if err != nil {
		return nil, "", err
	}
	op = newOp
	out = t.fresh("V")
	op = &xmas.CrElt{
		In: op, Label: ctor.Label, SkolemFn: t.skolem(),
		GroupVars: keys, Children: children, Out: out,
	}
	in.op = op
	in.vars[out] = true
	t.tags[out] = ctor.Label
	return op, out, nil
}

// concatContribs reduces the ordered contributions to a single ChildSpec for
// crElt, inserting cat operators as needed. A single contribution passes
// through directly (wrapped when it is a single element).
func (t *translator) concatContribs(op xmas.Op, contribs []contribution) (xmas.ChildSpec, xmas.Op, error) {
	if len(contribs) == 0 {
		return xmas.ChildSpec{}, nil, fmt.Errorf("translate: constructor with no content")
	}
	cur := xmas.ChildSpec{V: contribs[0].v, Wrap: !contribs[0].isList}
	for _, c := range contribs[1:] {
		next := xmas.ChildSpec{V: c.v, Wrap: !c.isList}
		w := t.fresh("W")
		op = &xmas.Cat{In: op, X: cur, Y: next, Out: w}
		cur = xmas.ChildSpec{V: w}
	}
	return cur, op, nil
}

// nestedQuery translates a FOR-WHERE-RETURN block appearing inside a
// constructor: the outer tuples are grouped into singleton-equivalent
// partitions (gBy on every variable) and the nested plan runs per partition
// via apply, reading the outer bindings through a nestedSrc.
func (t *translator) nestedQuery(q *xquery.Query, in *expr) (xmas.Op, xmas.Var, error) {
	op := in.op
	allVars := op.Schema()
	part := t.fresh("X")
	op = &xmas.GroupBy{In: op, Keys: allVars, Out: part}

	outerExpr := &expr{op: &xmas.NestedSrc{V: part, Vars: allVars}, vars: map[xmas.Var]bool{}}
	for _, v := range allVars {
		outerExpr.vars[v] = true
	}
	nestedOp, rootVar, err := t.query(q, outerExpr)
	if err != nil {
		return nil, "", err
	}
	nested := &xmas.TD{In: nestedOp, V: rootVar}

	out := t.fresh("Z")
	op = &xmas.Apply{In: op, Plan: nested, InpVar: part, Out: out}

	in.op = op
	newVars := map[xmas.Var]bool{part: true, out: true}
	for _, v := range allVars {
		newVars[v] = true
	}
	in.vars = newVars
	return op, out, nil
}

func inVarsSorted(in *expr) []xmas.Var {
	// Use the op's schema order for determinism.
	var out []xmas.Var
	for _, v := range in.op.Schema() {
		if in.vars[v] {
			out = append(out, v)
		}
	}
	return out
}

var _ = xtree.OpEQ // keep xtree imported for condition operators

package engine_test

import (
	"errors"
	"testing"

	"mix/internal/engine"
	"mix/internal/source"
	"mix/internal/xmas"
	"mix/internal/xtree"
)

// TestCompileRejectsUnboundNestedVar is a regression test for a class of
// plan that used to crash mid-execution: an apply whose nestedSrc declares a
// variable the partition schema does not bind. xmas.Validate accepts the
// plan (the nested body is internally consistent with its declared schema),
// and before Compile switched to xmas.Verify the engine panicked in
// Tuple.MustGet ("variable $MISSING not bound in schema") on the first
// partition read. Compile must now reject it with a typed *xmas.VerifyError
// before anything runs.
func TestCompileRejectsUnboundNestedVar(t *testing.T) {
	root := xtree.NewElem("&u", "list",
		xtree.NewElem("&o1", "order",
			xtree.NewElem("&k1", "cid", xtree.Text("A")),
			xtree.NewElem("&v1", "val", xtree.Text("10")),
		),
	)
	cat := source.NewCatalog()
	cat.AddXMLDoc("&doc", root)

	getO := &xmas.GetD{
		In:   &xmas.MkSrc{SrcID: "&doc", Out: "$D"},
		From: "$D", Path: xmas.ParsePath("order"), Out: "$O",
	}
	getK := &xmas.GetD{In: getO, From: "$O", Path: xmas.ParsePath("order.cid"), Out: "$K"}
	gby := &xmas.GroupBy{In: getK, Keys: []xmas.Var{"$K"}, Out: "$P"}
	nested := &xmas.TD{In: &xmas.NestedSrc{V: "$P", Vars: []xmas.Var{"$K", "$MISSING"}}, V: "$MISSING"}
	apply := &xmas.Apply{In: gby, Plan: nested, InpVar: "$P", Out: "$Z"}
	plan := &xmas.TD{In: apply, V: "$Z"}

	if err := xmas.Validate(plan); err != nil {
		t.Fatalf("precondition: Validate accepts the plan (the hole Verify closes), got %v", err)
	}
	_, err := engine.Compile(plan, cat)
	var verr *xmas.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("Compile = %v, want *xmas.VerifyError", err)
	}
	if verr.Rule != "nested-schema" {
		t.Fatalf("Rule = %q, want nested-schema", verr.Rule)
	}
}

package experiment

import (
	"strconv"
	"testing"
)

func cell(t *testing.T, tab Table, row int, col string) int64 {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			v, err := strconv.ParseInt(tab.Rows[row][i], 10, 64)
			if err != nil {
				t.Fatalf("cell %s[%d]: %v", col, row, err)
			}
			return v
		}
	}
	t.Fatalf("no column %s", col)
	return 0
}

// TestLazyVsEagerShape: the lazy side must ship strictly less than eager for
// small browse fractions, and shipping must grow with k.
func TestLazyVsEagerShape(t *testing.T) {
	tab := LazyVsEager([]int{60}, 3, []int{1, 10, 60})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	eager := cell(t, tab, 0, "eager_shipped")
	prev := int64(0)
	for i := range tab.Rows {
		lazy := cell(t, tab, i, "lazy_shipped")
		if lazy < prev {
			t.Fatalf("lazy shipping not monotone in k: %v", tab.Rows)
		}
		prev = lazy
		if e := cell(t, tab, i, "eager_shipped"); e != eager {
			t.Fatalf("eager shipping must not depend on k: %v", tab.Rows)
		}
	}
	if k1 := cell(t, tab, 0, "lazy_shipped"); k1*10 > eager {
		t.Fatalf("browsing 1 of 60 should ship ≪ eager: lazy=%d eager=%d", k1, eager)
	}
	// Browsing everything approaches (but never exceeds) the eager cost.
	if all := cell(t, tab, 2, "lazy_shipped"); all > eager {
		t.Fatalf("lazy shipped more than eager: %d > %d", all, eager)
	}
}

// TestCompositionShape: the optimized composition ships less than naive, and
// its cost falls as the predicate gets more selective.
func TestCompositionShape(t *testing.T) {
	tab := Composition([]int{60}, []int64{10000, 90000})
	loose := cell(t, tab, 0, "optimized_shipped")
	tight := cell(t, tab, 1, "optimized_shipped")
	if tight > loose {
		t.Fatalf("selectivity must reduce optimized shipping: %d vs %d", tight, loose)
	}
	for i := range tab.Rows {
		naive := cell(t, tab, i, "naive_shipped")
		opt := cell(t, tab, i, "optimized_shipped")
		if opt >= naive {
			t.Fatalf("row %d: optimized (%d) must ship less than naive (%d)", i, opt, naive)
		}
	}
}

// TestDecontextShape: decontextualization's shipping stays bounded by the
// single customer's data while materialization grows with subtree size.
func TestDecontextShape(t *testing.T) {
	tab := Decontext(40, []int{2, 20})
	small := cell(t, tab, 0, "mat_shipped")
	big := cell(t, tab, 1, "mat_shipped")
	if big <= small {
		t.Fatalf("materialization cost must grow with orders/cust: %d vs %d", big, small)
	}
	for i := range tab.Rows {
		if d, m := cell(t, tab, i, "decon_shipped"), cell(t, tab, i, "mat_shipped"); d > m {
			t.Fatalf("row %d: decontextualization shipped more (%d) than materialization (%d)", i, d, m)
		}
	}
}

// TestGroupByShape: reaching the first group costs O(group) with the
// presorted gBy and O(everything) with the stateful one.
func TestGroupByShape(t *testing.T) {
	tab := GroupBy([]int{40}, 4)
	pre := cell(t, tab, 0, "shipped_first_group")
	full := cell(t, tab, 1, "shipped_first_group")
	if pre*4 > full {
		t.Fatalf("presorted (%d) should ship ≪ stateful (%d) for the first group", pre, full)
	}
}

// TestAblationShape: the full pipeline ships the least; removing SQL
// pushdown hurts the most.
func TestAblationShape(t *testing.T) {
	tab := Ablation(60)
	byName := map[string]int64{}
	for i, row := range tab.Rows {
		byName[row[0]] = cell(t, tab, i, "shipped")
	}
	full := byName["full"]
	for name, shipped := range byName {
		if name == "full" {
			continue
		}
		if shipped < full {
			t.Fatalf("%s ships less (%d) than the full pipeline (%d)", name, shipped, full)
		}
	}
	if byName["no-sql-pushdown"] <= full {
		t.Fatal("disabling SQL pushdown should hurt")
	}
}

func TestTableString(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
	}
	s := tab.String()
	for _, want := range []string{"== demo ==", "note", "xxxxx", "bbbb"} {
		if !containsLine(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func containsLine(s, sub string) bool {
	for _, line := range splitLines(s) {
		if len(line) >= len(sub) && indexOf(line, sub) >= 0 {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

package rewrite_test

import (
	"testing"

	"mix/internal/rewrite"
	"mix/internal/translate"
	"mix/internal/xmas"
	"mix/internal/xquery"
)

const rwCacheQuery = `FOR $C IN document(&db1.customer)/customer RETURN $C`

func rwPlanFor(t *testing.T, rootName string) xmas.Op {
	t.Helper()
	q := xquery.MustParse(rwCacheQuery)
	tr, err := translate.Translate(q, rootName)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Plan
}

// TestRewriteCacheSharesAcrossRootIDs: plans differing only in the
// mediator's generated result root id share one entry, and a hit rebinds
// the requester's id so the optimized plan is exactly what an uncached
// rewrite would have produced.
func TestRewriteCacheSharesAcrossRootIDs(t *testing.T) {
	c := rewrite.NewCache(8)
	opt1, _, err := c.Optimize(rwPlanFor(t, "result1"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt2, _, err := c.Optimize(rwPlanFor(t, "result2"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d; want 1/1", st.Hits, st.Misses)
	}
	want, _, err := rewrite.Optimize(rwPlanFor(t, "result2"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := xmas.Format(opt2); got != xmas.Format(want) {
		t.Fatalf("cached plan diverged\ncached:\n%s\nuncached:\n%s", got, xmas.Format(want))
	}
	if xmas.Format(opt1) == xmas.Format(opt2) {
		t.Fatal("cached plan leaked the original root id")
	}
}

// TestRewriteCacheKeysOnOptions: the options fingerprint separates entries,
// including ChildLabels content (not just presence).
func TestRewriteCacheKeysOnOptions(t *testing.T) {
	c := rewrite.NewCache(8)
	mustOpt := func(opts rewrite.Options) {
		t.Helper()
		if _, _, err := c.Optimize(rwPlanFor(t, "r"), opts); err != nil {
			t.Fatal(err)
		}
	}
	mustOpt(rewrite.Options{})
	mustOpt(rewrite.Options{NoPushdown: true})
	mustOpt(rewrite.Options{ChildLabels: map[string][]string{"customer": {"name"}}})
	mustOpt(rewrite.Options{ChildLabels: map[string][]string{"customer": {"name", "addr"}}})
	if st := c.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("option variants shared entries: %+v", st)
	}
	mustOpt(rewrite.Options{ChildLabels: map[string][]string{"customer": {"name"}}})
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("identical ChildLabels missed: %+v", st)
	}
}

// TestRewriteCacheNilPassThrough: a nil cache rewrites directly and still
// returns the trace.
func TestRewriteCacheNilPassThrough(t *testing.T) {
	var c *rewrite.Cache
	opt, _, err := c.Optimize(rwPlanFor(t, "r"), rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt == nil {
		t.Fatal("nil cache returned nil plan")
	}
}

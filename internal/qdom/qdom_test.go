package qdom_test

import (
	"testing"

	"mix/internal/engine"
	"mix/internal/qdom"
	"mix/internal/translate"
	"mix/internal/workload"
	"mix/internal/xquery"
)

func viewDoc(t *testing.T) *qdom.Document {
	t.Helper()
	cat, _ := workload.PaperCatalog()
	tr := translate.MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	prog, err := engine.Compile(tr.Plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	return qdom.NewDocument(prog.Run(), &qdom.Origin{Plan: tr.Plan, Tags: tr.Tags})
}

// TestNavigationCommands exercises the QDOM commands of paper Section 2
// (d, r, fl, fv) against the running example, mirroring Example 2.1's
// navigation sequence.
func TestNavigationCommands(t *testing.T) {
	doc := viewDoc(t)
	p0 := doc.Root()
	if !p0.IsRoot() {
		t.Fatal("root must report IsRoot")
	}
	if p0.Label() != "list" {
		t.Fatalf("fl(p0) = %q", p0.Label())
	}
	if _, ok := p0.Value(); ok {
		t.Fatal("fv on non-leaf must be ⊥")
	}

	p1 := p0.Down()
	if p1.Label() != "CustRec" || p1.IsRoot() {
		t.Fatalf("d(p0): %q", p1.Label())
	}
	p2 := p1.Right()
	if p2 == nil || p2.Label() != "CustRec" {
		t.Fatal("r(p1)")
	}
	if p2.Right() != nil {
		t.Fatal("r(p2) must be ⊥ (two customers)")
	}
	p3 := p1.Down()
	if p3.Label() != "customer" {
		t.Fatalf("d(p1) = %q", p3.Label())
	}
	// Sibling walk inside CustRec: customer then OrderInfo(s).
	p4 := p3.Right()
	if p4 == nil || p4.Label() != "OrderInfo" {
		t.Fatalf("r(p3) = %v", p4)
	}
	// Leaf access.
	leaf := p3.Down().Down()
	if leaf == nil || !leaf.IsLeaf() {
		t.Fatal("descend to value leaf")
	}
	if v, ok := leaf.Value(); !ok || v != "DEF345" {
		t.Fatalf("fv = %q (first CustRec is DEF345 in key order)", v)
	}
	if leaf.Down() != nil {
		t.Fatal("d(leaf) must be ⊥")
	}
	if doc.Err() != nil {
		t.Fatal(doc.Err())
	}
}

func TestChildIndexing(t *testing.T) {
	doc := viewDoc(t)
	rec := doc.Root().Child(1)
	if rec == nil || rec.Label() != "CustRec" {
		t.Fatal("Child(1)")
	}
	// XYZ123's CustRec has customer + 2 OrderInfo.
	if rec.Child(2) == nil || rec.Child(3) != nil {
		t.Fatal("Child bounds")
	}
	if doc.Root().Child(99) != nil {
		t.Fatal("out-of-range child")
	}
}

func TestNilSafety(t *testing.T) {
	var n *qdom.Node
	if n.Down() != nil || n.Right() != nil || n.Label() != "" || n.ID() != "" {
		t.Fatal("nil node navigation must stay nil/empty")
	}
	if _, ok := n.Value(); ok {
		t.Fatal("nil node value")
	}
	if _, ok := n.Context(); ok {
		t.Fatal("nil node context")
	}
	if !n.IsLeaf() {
		t.Fatal("nil node IsLeaf")
	}
}

// TestContextAccumulatesEnclosingFixations: per paper Section 5, the id
// information includes "the values of the group-by attributes associated
// with the nodes that enclose the given node".
func TestContextAccumulatesEnclosingFixations(t *testing.T) {
	doc := viewDoc(t)
	rec := doc.Root().Down().Right() // XYZ123 CustRec
	oi := rec.Down().Right()         // first OrderInfo
	if oi.Label() != "OrderInfo" {
		t.Fatalf("navigated to %q", oi.Label())
	}
	ctx, ok := oi.Context()
	if !ok {
		t.Fatal("OrderInfo should decode a context")
	}
	if ctx.Var != "$V" {
		t.Fatalf("provenance var = %s", ctx.Var)
	}
	vars := map[string]string{}
	for _, f := range ctx.Fixed {
		vars[string(f.Var)] = f.ID
	}
	if vars["$C"] != "&XYZ123" {
		t.Fatalf("enclosing fixation $C missing: %+v", ctx.Fixed)
	}
	if _, hasO := vars["$O"]; !hasO {
		t.Fatalf("own fixation $O missing: %+v", ctx.Fixed)
	}
}

func TestContextOfBoundSourceNode(t *testing.T) {
	doc := viewDoc(t)
	cust := doc.Root().Down().Down() // customer element, bound to $C
	ctx, ok := cust.Context()
	if !ok {
		t.Fatal("customer node should decode a context")
	}
	if ctx.Var != "$C" {
		t.Fatalf("provenance var = %s", ctx.Var)
	}
}

func TestContextOfDeepSourceNode(t *testing.T) {
	doc := viewDoc(t)
	// id element inside customer: wrapped source node without provenance.
	idElem := doc.Root().Down().Down().Down()
	if idElem.Label() != "id" {
		t.Fatalf("navigated to %q", idElem.Label())
	}
	if _, ok := idElem.Context(); ok {
		t.Fatal("deep source nodes have no decodable context (fallback path)")
	}
}

func TestRootContext(t *testing.T) {
	doc := viewDoc(t)
	ctx, ok := doc.Root().Context()
	if !ok || !ctx.FromRoot {
		t.Fatalf("root context = %+v, %v", ctx, ok)
	}
}

func TestMaterializeSubtree(t *testing.T) {
	doc := viewDoc(t)
	rec := doc.Root().Down()
	m := rec.Materialize()
	if m.Label != "CustRec" || m.Find("customer") == nil {
		t.Fatalf("materialized subtree: %s", m)
	}
}

// TestLazyRightDoesNotForceSiblingSubtrees: navigating right across
// children must not force the content of the skipped subtrees beyond what
// group detection needs.
func TestLazyRightDoesNotForceSiblings(t *testing.T) {
	cat, db := workload.PaperCatalog()
	tr := translate.MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	prog, err := engine.Compile(tr.Plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	doc := qdom.NewDocument(prog.Run(), nil)
	db.ResetStats()
	p := doc.Root().Down()
	first := db.Stats().TuplesShipped
	if first == 0 {
		t.Fatal("first navigation shipped nothing")
	}
	_ = p.Right()
	second := db.Stats().TuplesShipped
	total := int64(6) // 2 customers + 4 orders is everything there is
	if second > total {
		t.Fatalf("shipped %d > table sizes", second)
	}
	t.Logf("shipped after d=%d, after r=%d", first, second)
}

func TestDocumentAccessors(t *testing.T) {
	doc := viewDoc(t)
	if doc.Origin() == nil || doc.Origin().Tags["$C"] != "customer" {
		t.Fatal("origin accessor")
	}
	n := doc.Root().Down()
	if n.Doc() != doc {
		t.Fatal("Doc accessor")
	}
	if n.Elem() == nil || n.Elem().Label != "CustRec" {
		t.Fatal("Elem accessor")
	}
	m := doc.Materialize()
	if m.Label != "list" {
		t.Fatal("document materialize")
	}
	if doc.Err() != nil {
		t.Fatal(doc.Err())
	}
}

func TestUpNavigation(t *testing.T) {
	doc := viewDoc(t)
	leaf := doc.Root().Down().Down().Down().Down()
	if !leaf.IsLeaf() {
		t.Fatalf("expected a leaf, got %q", leaf.Label())
	}
	path := []string{}
	for n := leaf; n != nil; n = n.Up() {
		path = append(path, n.Label())
	}
	// value leaf, id, customer, CustRec, list — five levels.
	if len(path) != 5 || path[3] != "CustRec" || path[4] != "list" {
		t.Fatalf("up path = %v", path)
	}
	if doc.Root().Up() != nil {
		t.Fatal("Up at root must be nil")
	}
}

package xmas

import (
	"fmt"

	"mix/internal/xtree"
)

// VerifyError is a typed static-verification failure. Callers (the engine's
// compiler, the rewrite gate, the wire fuzzer) match on it with errors.As to
// distinguish a statically rejected plan from an execution failure.
type VerifyError struct {
	Rule string // machine-readable rule id: "well-formed", "nested-schema"
	Op   string // Describe() of the offending operator, "" when plan-wide
	Msg  string
}

func (e *VerifyError) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("xmas: verify[%s]: %s", e.Rule, e.Msg)
	}
	return fmt.Sprintf("xmas: verify[%s]: %s: %s", e.Rule, e.Op, e.Msg)
}

// Verify statically checks a plan beyond Validate's well-formedness: every
// variable is bound before use, no operator redefines a live variable, and —
// the check Validate misses — every nestedSrc declares a schema the
// enclosing apply's partition actually binds. A plan that passes Verify
// cannot hit the engine's "variable not bound in schema" panic through a
// nested-plan read; a plan that fails returns a *VerifyError instead of
// compiling.
func Verify(root Op) error {
	if err := validate(root, true); err != nil {
		return &VerifyError{Rule: "well-formed", Msg: err.Error()}
	}
	if verr := verifyNestedSchemas(root); verr != nil {
		return verr
	}
	return nil
}

// verifyNestedSchemas checks, for every apply whose partition variable is
// produced by a gBy below it, that each nSrc reading that partition declares
// only variables the partition tuples bind. The engine materializes
// partition sets with the gBy input's full schema (compileGroupBy), so a
// declared variable outside it reads an unbound slot at runtime.
func verifyNestedSchemas(root Op) *VerifyError {
	var verr *VerifyError
	Walk(root, func(op Op) bool {
		if verr != nil {
			return false
		}
		a, ok := op.(*Apply)
		if !ok {
			return true
		}
		part, known := partitionSchema(a.In, a.InpVar)
		if !known {
			return true // partition producer not statically visible
		}
		Walk(a.Plan, func(x Op) bool {
			ns, ok := x.(*NestedSrc)
			if !ok || ns.V != a.InpVar {
				return true
			}
			for _, v := range ns.Vars {
				if !HasVar(part, v) {
					verr = &VerifyError{
						Rule: "nested-schema",
						Op:   Describe(a),
						Msg: fmt.Sprintf("nSrc(%s) declares %s which the partition schema %v does not bind",
							ns.V, v, part),
					}
					return false
				}
			}
			return true
		})
		return verr == nil
	})
	return verr
}

// partitionSchema resolves the tuple schema of the set bound to v within the
// subtree op: the input schema of the gBy that produced it. known=false when
// the producer is not a gBy in the subtree (the variable may arrive via an
// outer nestedSrc, where the outer plan holds the schema).
func partitionSchema(op Op, v Var) (schema []Var, known bool) {
	def := findDefiner(op, v)
	if g, ok := def.(*GroupBy); ok {
		return g.In.Schema(), true
	}
	return nil, false
}

// findDefiner locates the operator defining v in the subtree, preferring a
// real producer over a nestedSrc re-export (mirrors the rewriter's findDef).
func findDefiner(op Op, v Var) Op {
	var real, nested Op
	Walk(op, func(x Op) bool {
		if real != nil {
			return false
		}
		for _, d := range DefinedVars(x) {
			if d != v {
				continue
			}
			if _, isNested := x.(*NestedSrc); isNested {
				if nested == nil {
					nested = x
				}
			} else {
				real = x
				return false
			}
		}
		return true
	})
	if real != nil {
		return real
	}
	return nested
}

// Lint reports statically unsatisfiable predicates: select conditions that
// compare two constants to false, and stacked selects binding the same
// variable to two different equality constants. Findings are advisory, not
// Verify errors — the rewriter legitimately creates unsatisfiable subtrees
// (e.g. while unfolding a cat) and then eliminates them, so the gate must
// not reject intermediate plans that merely contain dead branches.
func Lint(root Op) []*VerifyError {
	var out []*VerifyError
	Walk(root, func(op Op) bool {
		s, ok := op.(*Select)
		if !ok {
			return true
		}
		c := s.Cond
		if c.Left.IsConst && c.Right.IsConst && !xtree.EvalCmp(c.Left.Const, c.Op, c.Right.Const) {
			out = append(out, &VerifyError{
				Rule: "unsat-cond",
				Op:   Describe(op),
				Msg:  fmt.Sprintf("condition %s is constant false", c),
			})
			return true
		}
		// σ[$v = c1] stacked over σ[$v = c2] with c1 ≠ c2 selects nothing.
		if eqVar, eqConst, ok := constEquality(c); ok {
			for in := s.In; ; {
				inner, isSel := in.(*Select)
				if !isSel {
					break
				}
				if v2, c2, ok := constEquality(inner.Cond); ok && v2 == eqVar && c2 != eqConst {
					out = append(out, &VerifyError{
						Rule: "unsat-cond",
						Op:   Describe(op),
						Msg: fmt.Sprintf("condition %s contradicts input selection %s = %q",
							c, eqVar, c2),
					})
					break
				}
				in = inner.In
			}
		}
		return true
	})
	return out
}

// constEquality decomposes c into ($v = const) if it has that shape.
func constEquality(c Cond) (Var, string, bool) {
	if c.Op != xtree.OpEQ {
		return "", "", false
	}
	switch {
	case !c.Left.IsConst && c.Right.IsConst:
		return c.Left.V, c.Right.Const, true
	case c.Left.IsConst && !c.Right.IsConst:
		return c.Right.V, c.Left.Const, true
	}
	return "", "", false
}

package framebudget_test

import (
	"testing"

	"mix/internal/analysis/analysistest"
	"mix/internal/analysis/framebudget"
)

func TestFrameBudget(t *testing.T) {
	analysistest.Run(t, "testdata/src/wire", framebudget.Analyzer)
}

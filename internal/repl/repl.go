// Package repl implements the interactive QDOM session behind cmd/mixnav —
// a text-mode counterpart of the paper's BBQ front end. It is a separate
// package so the command loop is testable: Execute processes one command
// and writes its output, Run drives a whole reader.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"mix"
)

// Session is one interactive navigation session over a mediator view.
type Session struct {
	med  *mix.Mediator
	doc  *mix.Document
	node *mix.Node
}

// New opens the named view and positions the session at its root.
func New(med *mix.Mediator, viewName string) (*Session, error) {
	doc, err := med.Open(viewName)
	if err != nil {
		return nil, err
	}
	return &Session{med: med, doc: doc, node: doc.Root()}, nil
}

// Node returns the current navigation position.
func (s *Session) Node() *mix.Node { return s.node }

// Prompt renders the current position and transfer counter.
func (s *Session) Prompt() string {
	return fmt.Sprintf("[%s %s] (%d shipped)> ",
		s.node.ID(), s.node.Label(), s.med.Stats().TuplesShipped)
}

// Execute runs one command line, writing any output to w. It returns true
// when the session should end.
func (s *Session) Execute(line string, w io.Writer) (quit bool) {
	cmd, rest, _ := strings.Cut(strings.TrimSpace(line), " ")
	switch cmd {
	case "":
	case "d":
		s.move(w, s.node.Down(), "⊥ (leaf)")
	case "r":
		s.move(w, s.node.Right(), "⊥ (no right sibling)")
	case "u":
		s.move(w, s.node.Up(), "⊥ (at root)")
	case "l":
		fmt.Fprintln(w, s.node.Label())
	case "v":
		if v, ok := s.node.Value(); ok {
			fmt.Fprintln(w, v)
		} else {
			fmt.Fprintln(w, "⊥ (not a leaf)")
		}
	case "id":
		fmt.Fprintln(w, s.node.ID())
	case "p":
		fmt.Fprint(w, s.node.Materialize().Pretty())
	case "q":
		if strings.TrimSpace(rest) == "" {
			fmt.Fprintln(w, "usage: q FOR $X IN document(root)/... RETURN ...")
			return false
		}
		doc, err := s.med.QueryFrom(s.node, rest)
		if err != nil {
			fmt.Fprintln(w, "error:", err)
			return false
		}
		s.doc = doc
		s.node = doc.Root()
		fmt.Fprintln(w, "new result document; navigation reset to its root")
	case "stats":
		st := s.med.Stats()
		fmt.Fprintf(w, "%d queries to sources, %d tuples shipped\n",
			st.QueriesReceived, st.TuplesShipped)
	case "help":
		fmt.Fprintln(w, "d=down r=right u=up l=label v=value id=object-id p=print-subtree q <query> stats quit")
	case "quit", "exit":
		return true
	default:
		fmt.Fprintf(w, "unknown command %q (try help)\n", cmd)
	}
	return false
}

func (s *Session) move(w io.Writer, next *mix.Node, blocked string) {
	if next == nil {
		fmt.Fprintln(w, blocked)
		return
	}
	s.node = next
}

// Run drives the session from r until quit or EOF, echoing prompts to w.
func (s *Session) Run(r io.Reader, w io.Writer) error {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(w, s.Prompt())
		if !in.Scan() {
			fmt.Fprintln(w)
			return in.Err()
		}
		if s.Execute(in.Text(), w) {
			return nil
		}
	}
}

// Package source is the mediator's catalog of underlying sources. MIX
// integrates two kinds (paper Architecture section): XML documents, which
// support navigation, and relational databases, which accept SQL and return
// cursors but "do not support any form of issuing queries from within a
// context created by queries and visited tuples".
//
// The catalog resolves the document ids that appear in queries (&root1,
// &db1.customer, ...) to sources and reports the capability and provenance
// information the optimizer needs to push work down.
package source

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mix/internal/cache"
	"mix/internal/relstore"
	"mix/internal/sqlexec"
	"mix/internal/wrapper"
	"mix/internal/xtree"
)

// SourceUnavailableError reports that a source endpoint could not be
// reached (or became unreachable mid-scan): a dead lower mediator, an open
// circuit breaker, a dropped connection. The engine propagates it fail-fast
// by default; under the opt-in partial-result policy it is converted into a
// SourceUnavailable annotation element on a truncated result instead.
type SourceUnavailableError struct {
	// Source is the document id of the unreachable source.
	Source string
	// Err is the underlying failure.
	Err error
}

func (e *SourceUnavailableError) Error() string {
	return fmt.Sprintf("source %s unavailable: %v", e.Source, e.Err)
}

func (e *SourceUnavailableError) Unwrap() error { return e.Err }

// Health describes the availability of one source endpoint, in circuit-
// breaker terms: "closed" (healthy), "open" (failing fast), "half-open"
// (probing).
type Health struct {
	State               string
	ConsecutiveFailures int
	LastError           string
}

// HealthReporter is implemented by source documents that track endpoint
// availability (e.g. wire.RemoteDoc, which surfaces its client's circuit
// breaker). Catalog.Health collects them.
type HealthReporter interface {
	Health() Health
}

// ElemCursor delivers the top-level elements of a source document one at a
// time (the mediator-side view of a source cursor).
type ElemCursor interface {
	Next() (*xtree.Node, bool, error)
	Close()
}

// Doc is one resolvable source document.
type Doc interface {
	// RootID is the object id of the document root.
	RootID() string
	// Open returns a cursor over the root's children.
	Open() (ElemCursor, error)
}

// BatchOpener is implemented by source documents that can deliver top-level
// children in batches (wire.RemoteDoc): batchSize caps one batch (0 means
// the source's own default; 1 or negative disables batching), and prefetch
// keeps one batch in flight ahead of consumption. The engine prefers it
// over Open when the execution options ask for batching.
type BatchOpener interface {
	OpenBatch(batchSize int, prefetch bool) (ElemCursor, error)
}

// AsyncOpener is implemented by source documents whose open itself is worth
// moving off the consumer goroutine (remote mediators, nested federated
// documents): OpenAsync returns immediately with a cursor whose connection
// setup and read-ahead run on a producer goroutine. The engine prefers it
// over BatchOpener/Open when the execution runs with Parallelism > 1, so
// distinct federated sources are contacted concurrently.
type AsyncOpener interface {
	OpenAsync(batchSize int, prefetch bool) ElemCursor
}

// PathIndexed is implemented by source documents whose tree supports a
// dataguide label-path index (local XML documents). Guide builds the index
// lazily on first use; the tree must be immutable while registered, which
// AddXMLDoc documents already require (navigation hands out the very nodes).
// Wrapper views over relations rebuild fresh nodes per scan and remote
// documents never ship whole trees, so neither implements it.
type PathIndexed interface {
	Guide() *xtree.Dataguide
}

// Descend answers a getD-style descendant probe from n via the dataguide of
// whichever registered document's tree contains n. The second result is
// false when no registered guide covers n (or the path has no indexable
// form) and the caller must walk. Matching is in document order, identical
// to the walk's.
func (c *Catalog) Descend(n *xtree.Node, path []string) ([]*xtree.Node, bool) {
	c.mu.RLock()
	docs := make([]Doc, 0, len(c.docs))
	for _, d := range c.docs {
		docs = append(docs, d)
	}
	c.mu.RUnlock()
	for _, d := range docs {
		pi, ok := d.(PathIndexed)
		if !ok {
			continue
		}
		g := pi.Guide()
		if !g.Contains(n) {
			continue
		}
		return g.Descend(n, path)
	}
	return nil, false
}

// RelBinding records that a document id is a wrapper view of a relation.
type RelBinding struct {
	Server   string
	Relation string
	Schema   relstore.Schema
}

// Catalog maps document ids to sources. It is safe for concurrent use:
// queries resolve documents while in-place-query fallbacks register
// temporary ones.
type Catalog struct {
	mu      sync.RWMutex
	docs    map[string]Doc
	relDBs  map[string]*relstore.DB
	relDocs map[string]RelBinding

	// rowHints holds administrator-declared source sizes (SetRowsHint) for
	// documents that cannot report their own; nil until the first hint.
	rowHints map[string]int64

	// resCache, when enabled, memoizes relational source results for every
	// SQL shipped through ExecRel (engine rQ subplans and wrapper scans).
	resCache *ResultCache

	// registrations counts catalog mutations (AddXMLDoc/AddRelDB/AddDoc/
	// Alias). Compiled plans resolve sources eagerly, so the plan cache keys
	// on StructVersion; the wire layer folds it into DataVersion so remote
	// node caches also notice re-registered documents.
	registrations atomic.Int64
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		docs:    map[string]Doc{},
		relDBs:  map[string]*relstore.DB{},
		relDocs: map[string]RelBinding{},
	}
}

// AddXMLDoc registers an in-memory XML document under srcID. If the node's
// own id is empty it is set to srcID.
func (c *Catalog) AddXMLDoc(srcID string, root *xtree.Node) {
	if root.ID == "" {
		root.ID = xtree.ID(srcID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs[srcID] = &xmlDoc{id: srcID, root: root}
	c.registrations.Add(1)
}

// AddRelDB registers every relation of db as a virtual document
// "&<server>.<relation>" and the server itself for SQL shipping.
func (c *Catalog) AddRelDB(db *relstore.DB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.relDBs[db.Name] = db
	for _, rel := range db.Relations() {
		t, _ := db.Table(rel)
		id := wrapper.RootID(db.Name, rel)
		c.docs[id] = &relDoc{id: id, cat: c, db: db, schema: t.Schema}
		c.relDocs[id] = RelBinding{Server: db.Name, Relation: rel, Schema: t.Schema}
	}
	c.registrations.Add(1)
}

// AddDoc registers an arbitrary document implementation — the hook through
// which a MIX mediator can serve as a source to another MIX mediator (paper
// Section 4: "a MIX mediator can be such a source to another MIX mediator").
func (c *Catalog) AddDoc(srcID string, d Doc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs[srcID] = d
	c.registrations.Add(1)
}

// Alias makes alias resolve to the same source as target (so a view can call
// the customer relation "&root1" as the paper's figures do).
func (c *Catalog) Alias(alias, target string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[target]
	if !ok {
		return fmt.Errorf("source: alias target %s not registered", target)
	}
	c.docs[alias] = d
	if rb, ok := c.relDocs[target]; ok {
		c.relDocs[alias] = rb
	}
	c.registrations.Add(1)
	return nil
}

// EnableResultCache turns on the source result cache with room for the
// given number of result sets. Call it before serving queries (mediator
// construction); entries < 1 leaves caching off.
func (c *Catalog) EnableResultCache(entries int) {
	if entries < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resCache = NewResultCache(entries)
}

// ResultCacheStats snapshots the result cache's counters; zero when the
// cache is disabled.
func (c *Catalog) ResultCacheStats() cache.Stats {
	c.mu.RLock()
	rc := c.resCache
	c.mu.RUnlock()
	if rc == nil {
		return cache.Stats{}
	}
	return rc.Stats()
}

// ExecRel executes sql against db through the result cache when one is
// enabled, falling back to a direct store execution otherwise. Every
// relational access of the engine and the wrapper scans route through here,
// so the toggle covers them uniformly.
func (c *Catalog) ExecRel(db *relstore.DB, sql string) (relstore.Cursor, error) {
	c.mu.RLock()
	rc := c.resCache
	c.mu.RUnlock()
	if rc == nil {
		cur, _, err := sqlexec.ExecSQL(db, sql)
		return cur, err
	}
	return rc.open(db, sql)
}

// StructVersion counts catalog registrations. Compiled plans resolve their
// sources eagerly, so the plan cache folds it into its keys: registering a
// document (including the in-place-query fallback's temporary context docs)
// invalidates every cached program.
func (c *Catalog) StructVersion() int64 { return c.registrations.Load() }

// DataVersion is the catalog-wide data version the wire server piggybacks
// on its responses: registrations plus every relational server's mutation
// counter, offset so it is never zero. Remote node caches compare it across
// round trips and purge when it moves.
func (c *Catalog) DataVersion() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v := c.registrations.Load() + 1
	for _, db := range c.relDBs {
		v += db.Version()
	}
	return v
}

// Resolve returns the document registered under srcID.
func (c *Catalog) Resolve(srcID string) (Doc, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[srcID]
	if !ok {
		return nil, fmt.Errorf("source: unknown document %s", srcID)
	}
	return d, nil
}

// RelBindingFor reports whether srcID is a wrapper view of a relation.
func (c *Catalog) RelBindingFor(srcID string) (RelBinding, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	rb, ok := c.relDocs[srcID]
	return rb, ok
}

// RelDB returns the relational server registered under name.
func (c *Catalog) RelDB(server string) (*relstore.DB, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db, ok := c.relDBs[server]
	return db, ok
}

// DocIDs lists the registered document ids, sorted (diagnostics).
func (c *Catalog) DocIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for id := range c.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Health reports the availability of every registered source that tracks
// it (HealthReporter implementors — remote mediators with circuit
// breakers). Local in-memory sources are always available and are omitted.
func (c *Catalog) Health() map[string]Health {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := map[string]Health{}
	for id, d := range c.docs {
		if hr, ok := d.(HealthReporter); ok {
			out[id] = hr.Health()
		}
		if shr, ok := d.(ShardHealthReporter); ok {
			for mid, h := range shr.ShardHealth() {
				out[id+"/"+mid] = h
			}
		}
	}
	return out
}

// Stats aggregates the transfer counters of every relational server.
func (c *Catalog) Stats() relstore.Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total relstore.Stats
	for _, db := range c.relDBs {
		s := db.Stats()
		total.TuplesShipped += s.TuplesShipped
		total.QueriesReceived += s.QueriesReceived
	}
	return total
}

// ResetStats zeroes every relational server's counters.
func (c *Catalog) ResetStats() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, db := range c.relDBs {
		db.ResetStats()
	}
}

// ---- XML documents ----

type xmlDoc struct {
	id   string
	root *xtree.Node

	guideOnce sync.Once
	guide     *xtree.Dataguide
}

func (d *xmlDoc) RootID() string { return d.id }

func (d *xmlDoc) Open() (ElemCursor, error) {
	return &sliceCursor{items: d.root.Children}, nil
}

// Guide builds the document's dataguide on first use (one preorder pass over
// a tree that is already in mediator memory). Re-registering a document under
// the same id creates a fresh xmlDoc — and hence a fresh guide — so a guide
// never outlives the tree snapshot it indexed.
func (d *xmlDoc) Guide() *xtree.Dataguide {
	d.guideOnce.Do(func() { d.guide = xtree.BuildDataguide(d.root) })
	return d.guide
}

type sliceCursor struct {
	items []*xtree.Node
	pos   int
}

func (s *sliceCursor) Next() (*xtree.Node, bool, error) {
	if s.pos >= len(s.items) {
		return nil, false, nil
	}
	n := s.items[s.pos]
	s.pos++
	return n, true, nil
}

func (s *sliceCursor) Close() {}

// ---- relational documents (wrapper views) ----

type relDoc struct {
	id     string
	cat    *Catalog
	db     *relstore.DB
	schema relstore.Schema
}

func (d *relDoc) RootID() string { return d.id }

// Open ships the unconstrained scan "SELECT cols FROM rel ORDER BY key" —
// what source access costs when nothing has been pushed down — and rebuilds
// tuple objects from rows as they are pulled. The scan routes through the
// catalog's result cache when one is enabled.
func (d *relDoc) Open() (ElemCursor, error) {
	q := scanSQL(d.schema)
	cur, err := d.cat.ExecRel(d.db, q)
	if err != nil {
		return nil, fmt.Errorf("source: scanning %s: %w", d.id, err)
	}
	return &relCursor{schema: d.schema, cur: cur}, nil
}

func scanSQL(s relstore.Schema) string {
	q := "SELECT "
	for i, col := range s.Columns {
		if i > 0 {
			q += ", "
		}
		q += col.Name
	}
	q += " FROM " + s.Relation
	for i, k := range s.Key {
		if i == 0 {
			q += " ORDER BY "
		} else {
			q += ", "
		}
		q += s.Columns[k].Name
	}
	return q
}

type relCursor struct {
	schema  relstore.Schema
	cur     relstore.Cursor
	ordinal int
}

func (r *relCursor) Next() (*xtree.Node, bool, error) {
	row, ok := r.cur.Next()
	if !ok {
		return nil, false, nil
	}
	elem := wrapper.TupleElem(r.schema, row, r.ordinal)
	r.ordinal++
	return elem, true, nil
}

func (r *relCursor) Close() { r.cur.Close() }

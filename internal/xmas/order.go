package xmas

// Order-sensitivity analysis for the cost-based join reorderer.
//
// Reordering a join tree permutes the tuple stream: a left-deep (or any)
// tree over leaves l1..ln emits the combined tuples in lexicographic
// (p1,...,pn) order of the leaf positions, so permuting leaves permutes the
// output. Whether that permutation is observable in the final document
// depends on which variables the operators above actually consume: a
// variable whose values (or whose first-occurrence order, for deduplicating
// operators) can reach the result is "order-carrying"; a leaf binding only
// non-carrying variables contributes multiplicity but no observable order.
//
// OrderDemand computes, for every operator, the set of carrying variables in
// its output schema, walking top-down from each plan root. The rules are
// conservative in one direction only — a variable may be reported carrying
// when it is not, never the reverse:
//
//   - tD demands its collect variable (dedup-by-id keeps first occurrences).
//   - select passes demand through: filtering drops tuples pointwise, and
//     within a block of tuples equal on all carrying variables the survivors
//     are interchangeable, so condition variables need not be demanded.
//   - project demands every projected variable (duplicate elimination keeps
//     first occurrences of distinct combinations).
//   - crElt adds its skolem group variables (they form the element id the
//     result deduplicates on) and its children variable (the kept element's
//     content); cat adds both argument variables.
//   - getD maps Out demand back to From (descendants enumerate in document
//     order per source node, so only the source node order is in question).
//   - groupBy demands its entire input schema: both the group order and the
//     order inside each partition are observable.
//   - orderBy adds its sort variables (the sort key values now determine the
//     stream order) and keeps the incoming demand (the engine's sort is
//     stable, so ties still expose input order).
//   - a semi-join propagates demand only to its kept side; the other side
//     contributes membership, never order.
type demandWalker struct {
	out map[Op]map[Var]bool
}

// OrderDemand returns, for every operator in the plan (nested apply and
// view plans included), the set of its output variables whose tuple order
// can be observed in the final result. The map is keyed by operator node
// identity.
func OrderDemand(root Op) map[Op]map[Var]bool {
	w := &demandWalker{out: map[Op]map[Var]bool{}}
	w.walkRoot(root)
	return w.out
}

func (w *demandWalker) walkRoot(root Op) {
	if td, ok := root.(*TD); ok {
		w.walk(td.In, set(td.V))
		w.out[root] = map[Var]bool{}
		return
	}
	// A plan without tD (fragments in tests): everything observable.
	w.walk(root, setAll(root.Schema()))
}

func set(vs ...Var) map[Var]bool {
	m := make(map[Var]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func setAll(vs []Var) map[Var]bool { return set(vs...) }

func union(a map[Var]bool, vs ...Var) map[Var]bool {
	m := make(map[Var]bool, len(a)+len(vs))
	for v := range a {
		m[v] = true
	}
	for _, v := range vs {
		m[v] = true
	}
	return m
}

func without(a map[Var]bool, v Var) map[Var]bool {
	m := make(map[Var]bool, len(a))
	for x := range a {
		if x != v {
			m[x] = true
		}
	}
	return m
}

// walk records demand as op's carrying set and propagates it to the inputs.
func (w *demandWalker) walk(op Op, demand map[Var]bool) {
	if op == nil {
		return
	}
	w.out[op] = demand
	switch o := op.(type) {
	case *MkSrc:
		if o.In != nil {
			// Naive composition: the view's result children feed Out, so the
			// nested plan's own collect order is observable iff Out is.
			if demand[o.Out] {
				w.walkRoot(o.In)
			} else {
				w.walk(o.In, map[Var]bool{})
			}
		}
	case *GetD:
		d := demand
		if demand[o.Out] {
			d = union(without(demand, o.Out), o.From)
		}
		w.walk(o.In, d)
	case *Select:
		w.walk(o.In, demand)
	case *Project:
		if len(demand) > 0 {
			w.walk(o.In, set(o.Vars...))
		} else {
			w.walk(o.In, map[Var]bool{})
		}
	case *Join:
		w.walkSplit(o.L, o.R, demand)
	case *SemiJoin:
		if o.Keep == KeepLeft {
			w.walk(o.L, demand)
			w.walk(o.R, map[Var]bool{})
		} else {
			w.walk(o.L, map[Var]bool{})
			w.walk(o.R, demand)
		}
	case *CrElt:
		d := demand
		if demand[o.Out] {
			d = union(without(demand, o.Out), o.GroupVars...)
			d = union(d, o.Children.V)
		}
		w.walk(o.In, d)
	case *Cat:
		d := demand
		if demand[o.Out] {
			d = union(without(demand, o.Out), o.X.V, o.Y.V)
		}
		w.walk(o.In, d)
	case *TD:
		w.walk(o.In, set(o.V))
	case *GroupBy:
		if len(demand) > 0 {
			w.walk(o.In, setAll(o.In.Schema()))
		} else {
			w.walk(o.In, map[Var]bool{})
		}
	case *Apply:
		d := demand
		if demand[o.Out] {
			d = union(without(demand, o.Out), o.InpVar)
		}
		w.walk(o.In, d)
		// The nested plan reads only the partition placeholder; its own
		// operators never touch the outer join tree.
		w.walkRoot(o.Plan)
	case *OrderBy:
		d := demand
		if len(demand) > 0 {
			d = union(demand, o.Vars...)
		}
		w.walk(o.In, d)
	}
}

// walkSplit distributes a joined demand set to the side that binds each
// variable.
func (w *demandWalker) walkSplit(l, r Op, demand map[Var]bool) {
	ls, rs := map[Var]bool{}, map[Var]bool{}
	lhas := setAll(l.Schema())
	for v := range demand {
		if lhas[v] {
			ls[v] = true
		} else {
			rs[v] = true
		}
	}
	w.walk(l, ls)
	w.walk(r, rs)
}

package engine

import (
	"fmt"

	"mix/internal/source"
	"mix/internal/xmas"
	"mix/internal/xtree"
)

// Program is a compiled XMAS plan, ready to run. Compilation resolves
// sources and validates the plan; Run is cheap and produces a fresh virtual
// result document each time.
type Program struct {
	plan   xmas.Op
	inner  compiledOp
	v      xmas.Var
	rootID string
	cat    *source.Catalog
}

// Compile validates and compiles a plan. The plan must be rooted at tD
// (every XMAS plan ends with the tuple-destroy operator, paper operator 9).
func Compile(plan xmas.Op, cat *source.Catalog) (*Program, error) {
	if err := xmas.Validate(plan); err != nil {
		return nil, err
	}
	td, ok := plan.(*xmas.TD)
	if !ok {
		return nil, fmt.Errorf("engine: plan root must be tD, got %s", plan.Name())
	}
	inner, err := compile(td.In, cat)
	if err != nil {
		return nil, err
	}
	rootID := td.RootID
	if rootID == "" {
		rootID = "&result"
	}
	if rootID != "" && rootID[0] != '&' {
		rootID = "&" + rootID
	}
	return &Program{plan: plan, inner: inner, v: td.V, rootID: rootID, cat: cat}, nil
}

// Plan returns the plan the program was compiled from.
func (p *Program) Plan() xmas.Op { return p.plan }

// Result is the virtual answer document of a query: a root element labeled
// "list" whose children materialize only as navigation reaches them.
type Result struct {
	Root *Elem
	err  *error
}

// Run starts an execution. No source is contacted until the result's root
// children are first navigated.
func (p *Program) Run() *Result {
	ctx := NewCtx(p.cat)
	var cur Cursor
	var runErr error
	seen := map[string]bool{}
	kids := NewLazyList(func() (*Elem, bool) {
		if runErr != nil {
			return nil, false
		}
		if cur == nil {
			cur = p.inner(ctx)
		}
		for {
			t, ok, err := cur.Next()
			if err != nil {
				runErr = err
				return nil, false
			}
			if !ok {
				return nil, false
			}
			nv, isNode := t.MustGet(p.v).(NodeVal)
			if !isNode || nv.E == nil {
				continue
			}
			e := stampElem(nv.E, p.v)
			if e.ID != "" {
				if seen[e.ID] {
					continue
				}
				seen[e.ID] = true
			}
			return e, true
		}
	})
	root := NewElem(p.rootID, "list", kids)
	return &Result{Root: root, err: &runErr}
}

// Err reports an error encountered while forcing the result. Cursor errors
// surface as truncated child lists; callers that need to distinguish check
// Err after navigation. (The QDOM layer re-checks it on every step.)
func (r *Result) Err() error {
	if r.err == nil {
		return nil
	}
	return *r.err
}

// Materialize forces the whole result into a plain tree — the behaviour of
// conventional mediators that "compute and return the full result of the
// user query" (paper Section 1). The eager baseline and tests use it.
func (r *Result) Materialize() *xtree.Node {
	return r.Root.Materialize()
}

// CompileFragment compiles a non-tD subplan into a cursor factory — a
// diagnostic hook for tests that need to observe intermediate operator
// output.
func CompileFragment(op xmas.Op, cat *source.Catalog) (func() Cursor, error) {
	c, err := compile(op, cat)
	if err != nil {
		return nil, err
	}
	return func() Cursor { return c(NewCtx(cat)) }, nil
}

// Package xquery implements the XQuery subset of paper Figure 4 — FOR/WHERE/
// RETURN queries with simple path expressions — augmented with the group-by
// list extension of [Draper et al.] that the paper adopts ("OptGroupByList"),
// plus the lexical conventions of the paper's examples: `%` line comments,
// (: ... :) XQuery comments, object-id constants such as &root1, and the
// data() suffix in WHERE operands.
//
// Three extensions go beyond Figure 4 (the paper excludes them from its
// path language; they compile onto the same algebra): '*' wildcard path
// steps, path predicates (`/OrderInfo[orders/value > 100]`, desugared at
// parse time into fresh bindings plus WHERE conjuncts), and an ORDER BY
// clause mapping onto the XMAS orderBy operator (which sorts by node ids).
package xquery

import "fmt"

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar    // $C
	tokString // "B"
	tokNumber // 300, 0.4
	tokOID    // &root1
	tokSlash
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokLT // <  (relop in WHERE, tag open in RETURN)
	tokGT // >
	tokLE
	tokGE
	tokEQ
	tokNE
	tokLTSlash  // </
	tokStar     // * (wildcard path step)
	tokLBracket // [ (path predicate)
	tokRBracket // ]
)

var tokenNames = map[tokenKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokVar: "variable",
	tokString: "string", tokNumber: "number", tokOID: "object id",
	tokSlash: "'/'", tokLParen: "'('", tokRParen: "')'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokComma: "','",
	tokLT: "'<'", tokGT: "'>'", tokLE: "'<='", tokGE: "'>='",
	tokEQ: "'='", tokNE: "'!='", tokLTSlash: "'</'", tokStar: "'*'",
	tokLBracket: "'['", tokRBracket: "']'",
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error reporting
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", tokenNames[t.kind], t.text)
	}
	return tokenNames[t.kind]
}

// ParseError reports a syntactically invalid query.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xquery: offset %d: %s", e.Pos, e.Msg)
}

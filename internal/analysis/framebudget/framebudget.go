// Package framebudget enforces the wire layer's batch budget discipline:
// children/scan response batches must be built through the budget-checking
// frame appender (which enforces MaxBatch, the MaxFrame byte budget and the
// handle-table bound), never by raw appends or assignments to a Frames
// field. A raw append compiles and works on small batches, then silently
// ships over-budget responses that blow the client's frame limit in
// production — exactly the class of bug the budget helpers exist to make
// impossible.
//
// The binary wire codec gets the same discipline on its encode path:
// appendNodeFrame serializes one frame of an already budget-checked
// response, so it may only be called from encodeResponse. Calling it from
// anywhere else would let a batch reach the wire without ever passing
// through the appender — the binary-era spelling of the raw-append bug.
//
// The check applies to packages named "wire" (and their test packages).
// Composite literals in _test.go files are exempt: fixture responses are
// data, not batch construction.
package framebudget

import (
	"go/ast"
	"go/token"
	"strings"

	"mix/internal/analysis"
)

// Analyzer is the framebudget check.
var Analyzer = &analysis.Analyzer{
	Name: "framebudget",
	Doc:  "batch frames must flow through the budget-checking appender, not raw appends",
	Run:  run,
}

// allowedFuncs may touch Frames directly: the budget appender itself and
// the response encoder.
var allowedRecv = map[string]bool{"frameAppender": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if base := strings.TrimSuffix(pass.Pkg.Name(), "_test"); base != "wire" {
		return nil, nil
	}
	ignored := analysis.IgnoredLines(pass)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !ignored[pass.Position(pos).Line] {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, fn := range analysis.Functions(pass) {
		if allowedRecv[fn.Recv] {
			continue
		}
		fromEncoder := fn.Recv == "" && (fn.Name == "encodeResponse" || strings.HasPrefix(fn.Name, "encodeResponse."))
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "append" && len(s.Args) > 0 {
					if isFramesSel(s.Args[0]) {
						report(s.Pos(), "raw append to Frames bypasses the MaxFrame/MaxBatch budget; use the frameAppender helper")
					}
				}
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "appendNodeFrame" && !fromEncoder {
					report(s.Pos(), "appendNodeFrame outside encodeResponse serializes frames that never passed the budget appender")
				}
			case *ast.AssignStmt:
				for i, l := range s.Lhs {
					if !isFramesSel(l) {
						continue
					}
					// The self-append idiom is already reported through its
					// append call; don't double-report the assignment.
					if i < len(s.Rhs) {
						if call, ok := s.Rhs[i].(*ast.CallExpr); ok {
							if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
								continue
							}
						}
					}
					report(s.Pos(), "direct assignment to Frames bypasses the MaxFrame/MaxBatch budget; use the frameAppender helper")
					break
				}
			}
			return true
		})
	}
	return nil, nil
}

func isFramesSel(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Frames"
}

package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the negotiated binary wire codec: the same Request/Response
// messages as the JSON protocol, encoded as tagged binary fields inside
// length-prefixed frames. It swaps in beneath the framing layer — message
// boundaries, MaxFrame budgets and the session/resume machinery are
// untouched — and engages only after both peers agree via the Codec field
// of an ordinary JSON exchange (see protocol.go), so a binary-capable peer
// talking to an old one stays on JSON automatically.
//
// Layout: a frame is a big-endian uint32 payload length followed by the
// payload. A payload is a message kind byte ('Q' request, 'R' response)
// followed by tagged fields: one tag byte, then the field value — varints
// for integers (zigzag for signed), length-prefixed bytes for strings.
// Boolean fields carry no value; the tag's presence is the truth. Fields
// with zero values are omitted, mirroring the JSON encoding's omitempty.

// codecBin is the negotiated codec name carried in Request/Response.Codec.
const codecBin = "bin"

// binKindReq/binKindResp are the payload kind bytes.
const (
	binKindReq  = 'Q'
	binKindResp = 'R'
)

// Request field tags.
const (
	reqTagID = iota + 1
	reqTagOp
	reqTagView
	reqTagQuery
	reqTagHandle
	reqTagSkip
	reqTagMax
	reqTagDeep
	reqTagRelease
	reqTagToken
	reqTagCodec
)

// Response field tags.
const (
	respTagID = iota + 1
	respTagOK
	respTagError
	respTagBusy
	respTagRetryAfterMs
	respTagToken
	respTagHandle
	respTagNil
	respTagLabel
	respTagValue
	respTagIsLeaf
	respTagNodeID
	respTagXML
	respTagDataVersion
	respTagFrames
	respTagMore
	respTagTuplesShipped
	respTagQueriesReceived
	respTagCodec
)

// NodeFrame flag bits (frames are dense enough that a flag byte beats tags).
const (
	frameFlagIsLeaf = 1 << iota
	frameFlagLabel
	frameFlagNodeID
	frameFlagValue
	frameFlagXML
)

// ---- primitive appenders ----

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// binReader decodes primitives from a payload; it records the first error
// and fails all further reads, so decoders check once at the end.
type binReader struct {
	buf []byte
	pos int
	err error
}

func (r *binReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binReader) done() bool { return r.err != nil || r.pos >= len(r.buf) }

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("wire: binary payload truncated")
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("wire: bad uvarint in binary payload")
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("wire: bad varint in binary payload")
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) string() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || len(r.buf)-r.pos < n {
		r.fail("wire: binary string overruns payload")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

// ---- request ----

// encodeRequest serializes a request into a binary payload (no length
// prefix; writeBinFrame adds it).
func encodeRequest(b []byte, req *Request) []byte {
	b = append(b, binKindReq)
	if req.ID != 0 {
		b = append(b, reqTagID)
		b = appendVarint(b, req.ID)
	}
	if req.Op != "" {
		b = append(b, reqTagOp)
		b = appendString(b, req.Op)
	}
	if req.View != "" {
		b = append(b, reqTagView)
		b = appendString(b, req.View)
	}
	if req.Query != "" {
		b = append(b, reqTagQuery)
		b = appendString(b, req.Query)
	}
	if req.Handle != 0 {
		b = append(b, reqTagHandle)
		b = appendVarint(b, req.Handle)
	}
	if req.Skip != 0 {
		b = append(b, reqTagSkip)
		b = appendVarint(b, int64(req.Skip))
	}
	if req.Max != 0 {
		b = append(b, reqTagMax)
		b = appendVarint(b, int64(req.Max))
	}
	if req.Deep {
		b = append(b, reqTagDeep)
	}
	if len(req.Release) > 0 {
		b = append(b, reqTagRelease)
		b = appendUvarint(b, uint64(len(req.Release)))
		for _, h := range req.Release {
			b = appendVarint(b, h)
		}
	}
	if req.Token != "" {
		b = append(b, reqTagToken)
		b = appendString(b, req.Token)
	}
	if req.Codec != "" {
		b = append(b, reqTagCodec)
		b = appendString(b, req.Codec)
	}
	return b
}

// decodeRequest parses a binary request payload.
func decodeRequest(payload []byte) (Request, error) {
	var req Request
	r := &binReader{buf: payload}
	if k := r.byte(); k != binKindReq {
		return req, fmt.Errorf("wire: binary payload kind %q, want request", k)
	}
	for !r.done() {
		switch tag := r.byte(); tag {
		case reqTagID:
			req.ID = r.varint()
		case reqTagOp:
			req.Op = r.string()
		case reqTagView:
			req.View = r.string()
		case reqTagQuery:
			req.Query = r.string()
		case reqTagHandle:
			req.Handle = r.varint()
		case reqTagSkip:
			req.Skip = int(r.varint())
		case reqTagMax:
			req.Max = int(r.varint())
		case reqTagDeep:
			req.Deep = true
		case reqTagRelease:
			n := r.uvarint()
			if n > uint64(len(payload)) { // cheap sanity bound before allocating
				r.fail("wire: release list length %d overruns payload", n)
				break
			}
			req.Release = make([]int64, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				req.Release = append(req.Release, r.varint())
			}
		case reqTagToken:
			req.Token = r.string()
		case reqTagCodec:
			req.Codec = r.string()
		default:
			r.fail("wire: unknown binary request tag %d", tag)
		}
	}
	return req, r.err
}

// ---- response ----

// appendNodeFrame serializes one NodeFrame. It may only be called from
// encodeResponse: a response's Frames were grown through the budget-checking
// frameAppender, and serializing frames from anywhere else would reintroduce
// exactly the raw unbudgeted growth the framebudget analyzer forbids.
func appendNodeFrame(b []byte, f *NodeFrame) []byte {
	var flags byte
	if f.IsLeaf {
		flags |= frameFlagIsLeaf
	}
	if f.Label != "" {
		flags |= frameFlagLabel
	}
	if f.NodeID != "" {
		flags |= frameFlagNodeID
	}
	if f.Value != "" {
		flags |= frameFlagValue
	}
	if f.XML != "" {
		flags |= frameFlagXML
	}
	b = append(b, flags)
	b = appendVarint(b, f.Handle)
	if flags&frameFlagLabel != 0 {
		b = appendString(b, f.Label)
	}
	if flags&frameFlagNodeID != 0 {
		b = appendString(b, f.NodeID)
	}
	if flags&frameFlagValue != 0 {
		b = appendString(b, f.Value)
	}
	if flags&frameFlagXML != 0 {
		b = appendString(b, f.XML)
	}
	return b
}

func decodeNodeFrame(r *binReader) NodeFrame {
	var f NodeFrame
	flags := r.byte()
	f.Handle = r.varint()
	f.IsLeaf = flags&frameFlagIsLeaf != 0
	if flags&frameFlagLabel != 0 {
		f.Label = r.string()
	}
	if flags&frameFlagNodeID != 0 {
		f.NodeID = r.string()
	}
	if flags&frameFlagValue != 0 {
		f.Value = r.string()
	}
	if flags&frameFlagXML != 0 {
		f.XML = r.string()
	}
	return f
}

// encodeResponse serializes a response into a binary payload.
func encodeResponse(b []byte, resp *Response) []byte {
	b = append(b, binKindResp)
	if resp.ID != 0 {
		b = append(b, respTagID)
		b = appendVarint(b, resp.ID)
	}
	if resp.OK {
		b = append(b, respTagOK)
	}
	if resp.Error != "" {
		b = append(b, respTagError)
		b = appendString(b, resp.Error)
	}
	if resp.Busy {
		b = append(b, respTagBusy)
	}
	if resp.RetryAfterMs != 0 {
		b = append(b, respTagRetryAfterMs)
		b = appendVarint(b, resp.RetryAfterMs)
	}
	if resp.Token != "" {
		b = append(b, respTagToken)
		b = appendString(b, resp.Token)
	}
	if resp.Handle != 0 {
		b = append(b, respTagHandle)
		b = appendVarint(b, resp.Handle)
	}
	if resp.Nil {
		b = append(b, respTagNil)
	}
	if resp.Label != "" {
		b = append(b, respTagLabel)
		b = appendString(b, resp.Label)
	}
	if resp.Value != "" {
		b = append(b, respTagValue)
		b = appendString(b, resp.Value)
	}
	if resp.IsLeaf {
		b = append(b, respTagIsLeaf)
	}
	if resp.NodeID != "" {
		b = append(b, respTagNodeID)
		b = appendString(b, resp.NodeID)
	}
	if resp.XML != "" {
		b = append(b, respTagXML)
		b = appendString(b, resp.XML)
	}
	if resp.DataVersion != 0 {
		b = append(b, respTagDataVersion)
		b = appendVarint(b, resp.DataVersion)
	}
	if len(resp.Frames) > 0 {
		b = append(b, respTagFrames)
		b = appendUvarint(b, uint64(len(resp.Frames)))
		for i := range resp.Frames {
			b = appendNodeFrame(b, &resp.Frames[i])
		}
	}
	if resp.More {
		b = append(b, respTagMore)
	}
	if resp.TuplesShipped != 0 {
		b = append(b, respTagTuplesShipped)
		b = appendVarint(b, resp.TuplesShipped)
	}
	if resp.QueriesReceived != 0 {
		b = append(b, respTagQueriesReceived)
		b = appendVarint(b, resp.QueriesReceived)
	}
	if resp.Codec != "" {
		b = append(b, respTagCodec)
		b = appendString(b, resp.Codec)
	}
	return b
}

// decodeResponse parses a binary response payload.
func decodeResponse(payload []byte) (Response, error) {
	var resp Response
	r := &binReader{buf: payload}
	if k := r.byte(); k != binKindResp {
		return resp, fmt.Errorf("wire: binary payload kind %q, want response", k)
	}
	for !r.done() {
		switch tag := r.byte(); tag {
		case respTagID:
			resp.ID = r.varint()
		case respTagOK:
			resp.OK = true
		case respTagError:
			resp.Error = r.string()
		case respTagBusy:
			resp.Busy = true
		case respTagRetryAfterMs:
			resp.RetryAfterMs = r.varint()
		case respTagToken:
			resp.Token = r.string()
		case respTagHandle:
			resp.Handle = r.varint()
		case respTagNil:
			resp.Nil = true
		case respTagLabel:
			resp.Label = r.string()
		case respTagValue:
			resp.Value = r.string()
		case respTagIsLeaf:
			resp.IsLeaf = true
		case respTagNodeID:
			resp.NodeID = r.string()
		case respTagXML:
			resp.XML = r.string()
		case respTagDataVersion:
			resp.DataVersion = r.varint()
		case respTagFrames:
			n := r.uvarint()
			if n > uint64(len(payload)) {
				r.fail("wire: frame count %d overruns payload", n)
				break
			}
			// Re-attach decoded frames through the appender — the one
			// construction path for Frames. Budgets were enforced by the
			// sender and by readBinFrame's length check; add never cuts.
			fa := &frameAppender{resp: &resp, max: int(n), budget: len(payload)}
			for i := uint64(0); i < n && r.err == nil; i++ {
				fa.add(decodeNodeFrame(r))
			}
		case respTagMore:
			resp.More = true
		case respTagTuplesShipped:
			resp.TuplesShipped = r.varint()
		case respTagQueriesReceived:
			resp.QueriesReceived = r.varint()
		case respTagCodec:
			resp.Codec = r.string()
		default:
			r.fail("wire: unknown binary response tag %d", tag)
		}
	}
	return resp, r.err
}

// ---- binary framing ----

// binLenSize is the frame length prefix width.
const binLenSize = 4

// writeBinFrame writes one length-prefixed binary frame.
func writeBinFrame(w *bufio.Writer, payload []byte) error {
	var hdr [binLenSize]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readBinFrame reads one length-prefixed binary frame of at most max payload
// bytes. On an oversized frame it drains the payload — resynchronizing the
// stream exactly like readFrame does for JSON lines — and returns
// *FrameTooLargeError.
func readBinFrame(r *bufio.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [binLenSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return nil, err
		}
		return nil, &FrameTooLargeError{Limit: max}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

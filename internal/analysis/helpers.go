package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// IgnoredLines collects the lines carrying a `//mixvet:ignore` comment;
// analyzers suppress findings reported on those lines. The escape hatch is
// deliberate and greppable — every use is visible in review.
func IgnoredLines(pass *Pass) map[int]bool {
	out := map[int]bool{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "mixvet:ignore") {
					out[pass.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return out
}

// HasCloseMethod reports whether t (or *t) has a Close method with no
// parameters — the cursor/result cleanup contract. Both `Close()` and
// `Close() error` qualify.
func HasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	check := func(ms *types.MethodSet) bool {
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i)
			if m.Obj().Name() != "Close" {
				continue
			}
			if sig, ok := m.Obj().Type().(*types.Signature); ok && sig.Params().Len() == 0 {
				return true
			}
		}
		return false
	}
	if check(types.NewMethodSet(t)) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return check(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}

// CalleeName returns the bare name of a call's function: "Open" for both
// `Open(...)` and `x.Open(...)`.
func CalleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// EnclosingFuncs indexes every function body in the pass by syntax node,
// pairing each with its name for allowlist checks. FuncLits get the name of
// their enclosing declaration plus ".func".
type FuncInfo struct {
	Name string // declared name, or outer name + ".func" for literals
	Recv string // receiver type name for methods, "" otherwise
	Body *ast.BlockStmt
}

// Functions lists every function body in the pass (declarations and
// literals), outermost first within each file.
func Functions(pass *Pass) []FuncInfo {
	var out []FuncInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := ""
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				recv = recvTypeName(fd.Recv.List[0].Type)
			}
			out = append(out, FuncInfo{Name: fd.Name.Name, Recv: recv, Body: fd.Body})
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, FuncInfo{Name: name + ".func", Recv: recv, Body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

package workload

import (
	"mix/internal/relstore"
	"mix/internal/shard"
	"mix/internal/wrapper"
)

// Fleet partitioning helpers: horizontal slices of the standard workload
// databases, so tests and experiments can stand up an N-shard fleet whose
// union is exactly the unsharded database.

// ShardDB returns the idx-th horizontal slice of db under spec: every
// relation keeps the rows whose partition key the spec assigns to shard
// idx. key extracts a row's partition key; nil means the wrapper tuple oid
// (matching node-id partitioning of the relation's virtual view).
func ShardDB(db *relstore.DB, spec shard.Spec, idx int, key func(rel string, s relstore.Schema, row []relstore.Datum) string) *relstore.DB {
	out := relstore.NewDB(db.Name)
	for _, rel := range db.Relations() {
		t, ok := db.Table(rel)
		if !ok {
			continue
		}
		out.MustCreate(t.Schema)
		rows, _ := db.RowsSnapshot(rel)
		for ordinal, row := range rows {
			k := ""
			if key != nil {
				k = key(rel, t.Schema, row)
			} else {
				k = string(wrapper.TupleOID(t.Schema, row, ordinal))
			}
			if spec.ShardOf(k) == idx {
				out.MustInsert(rel, row...)
			}
		}
	}
	return out
}

// ShardScaleDB returns the idx-th slice of ScaleDB(name, nCustomers,
// ordersPer, seed) partitioned on the customer id value: each shard keeps
// the customers the spec assigns to it plus their orders (co-partitioned
// by cid), so a per-shard CustRec view unions to the unsharded one.
func ShardScaleDB(name string, nCustomers, ordersPer int, seed int64, spec shard.Spec, idx int) *relstore.DB {
	full := ScaleDB(name, nCustomers, ordersPer, seed)
	return ShardDB(full, spec, idx, func(rel string, s relstore.Schema, row []relstore.Datum) string {
		if rel == "orders" {
			return row[s.ColIndex("cid")].String()
		}
		return row[s.ColIndex("id")].String()
	})
}

package quotabalance_test

import (
	"testing"

	"mix/internal/analysis/analysistest"
	"mix/internal/analysis/quotabalance"
)

func TestQuotaBalance(t *testing.T) {
	analysistest.Run(t, "testdata/src/wire", quotabalance.Analyzer)
}

package xmas_test

import (
	"errors"
	"strings"
	"testing"

	"mix/internal/xmas"
	"mix/internal/xtree"
)

// groupedApply builds the canonical apply-over-gBy shape:
//
//	apply_{tD_collect(nSrc($P, nsVars)), $P → $Z}(gBy_{[$K] → $P}(getD))
//
// with the partition schema {$K, $C} (the gBy input's schema).
func groupedApply(nsVars []xmas.Var, collect xmas.Var) *xmas.Apply {
	src := &xmas.MkSrc{SrcID: "&doc", Out: "$D"}
	getK := &xmas.GetD{In: src, From: "$D", Path: []string{"k"}, Out: "$K"}
	getC := &xmas.GetD{In: getK, From: "$D", Path: []string{"c"}, Out: "$C"}
	gby := &xmas.GroupBy{In: getC, Keys: []xmas.Var{"$K"}, Out: "$P"}
	nested := &xmas.TD{In: &xmas.NestedSrc{V: "$P", Vars: nsVars}, V: collect}
	return &xmas.Apply{In: gby, Plan: nested, InpVar: "$P", Out: "$Z"}
}

func TestVerifyAcceptsWellFormedPlan(t *testing.T) {
	plan := groupedApply([]xmas.Var{"$K", "$C"}, "$C")
	if err := xmas.Verify(plan); err != nil {
		t.Fatalf("Verify rejected a well-formed plan: %v", err)
	}
}

func TestVerifyRejectsUnboundNestedVar(t *testing.T) {
	// The nSrc declares $MISSING, which the partition schema {$K, $C} does
	// not bind, and the nested plan collects it — internally consistent, so
	// Validate accepts the plan; executing it panics inside Tuple.MustGet.
	// Verify must reject it with a typed error instead.
	plan := groupedApply([]xmas.Var{"$K", "$MISSING"}, "$MISSING")
	if err := xmas.Validate(plan); err != nil {
		t.Fatalf("precondition: Validate should accept the plan (the hole Verify closes), got %v", err)
	}
	err := xmas.Verify(plan)
	var verr *xmas.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("Verify = %v, want *VerifyError", err)
	}
	if verr.Rule != "nested-schema" {
		t.Fatalf("Rule = %q, want nested-schema", verr.Rule)
	}
	if !strings.Contains(verr.Msg, "$MISSING") {
		t.Fatalf("message %q does not name the unbound variable", verr.Msg)
	}
}

func TestVerifyRejectsUseBeforeBind(t *testing.T) {
	// getD reads $X, which nothing below it binds.
	src := &xmas.MkSrc{SrcID: "&doc", Out: "$D"}
	bad := &xmas.GetD{In: src, From: "$X", Path: []string{"a"}, Out: "$A"}
	err := xmas.Verify(&xmas.TD{In: bad, V: "$A"})
	var verr *xmas.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("Verify = %v, want *VerifyError", err)
	}
	if verr.Rule != "well-formed" {
		t.Fatalf("Rule = %q, want well-formed", verr.Rule)
	}
}

func TestLintFlagsContradictorySelects(t *testing.T) {
	src := &xmas.MkSrc{SrcID: "&doc", Out: "$D"}
	getA := &xmas.GetD{In: src, From: "$D", Path: []string{"a"}, Out: "$A"}
	inner := &xmas.Select{In: getA, Cond: xmas.NewVarConstCond("$A", xtree.OpEQ, "x")}
	outer := &xmas.Select{In: inner, Cond: xmas.NewVarConstCond("$A", xtree.OpEQ, "y")}
	plan := &xmas.TD{In: outer, V: "$A"}
	if err := xmas.Verify(plan); err != nil {
		t.Fatalf("Verify must accept an unsatisfiable-but-well-formed plan, got %v", err)
	}
	finds := xmas.Lint(plan)
	if len(finds) != 1 {
		t.Fatalf("Lint found %d issues, want 1: %v", len(finds), finds)
	}
	if finds[0].Rule != "unsat-cond" {
		t.Fatalf("Rule = %q, want unsat-cond", finds[0].Rule)
	}
}

func TestLintFlagsConstantFalseCondition(t *testing.T) {
	src := &xmas.MkSrc{SrcID: "&doc", Out: "$D"}
	sel := &xmas.Select{In: src, Cond: xmas.Cond{
		Left: xmas.ConstOperand("1"), Op: xtree.OpEQ, Right: xmas.ConstOperand("2"),
	}}
	finds := xmas.Lint(&xmas.TD{In: sel, V: "$D"})
	if len(finds) != 1 || finds[0].Rule != "unsat-cond" {
		t.Fatalf("Lint = %v, want one unsat-cond finding", finds)
	}
}

package xquery

import (
	"fmt"
	"strings"
)

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex scans the whole input; the parser then works over the token slice,
// which keeps backtracking (needed for distinguishing tags from comparisons)
// trivial.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &ParseError{Pos: l.pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '%': // paper-style line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "(:"): // XQuery comment
			end := strings.Index(l.src[l.pos:], ":)")
			if end < 0 {
				return l.errorf("unterminated (: comment")
			}
			l.pos += end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
			return token{}, l.errorf("'$' must be followed by a variable name")
		}
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokVar, text: l.src[start:l.pos], pos: start}, nil
	case c == '&':
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, l.errorf("'&' must be followed by an object id")
		}
		return token{kind: tokOID, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case isDigit(c):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '"':
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return token{}, l.errorf("unterminated string literal")
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokString, text: text, pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case c == '=':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokEQ, pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNE, pos: start}, nil
		}
		return token{}, l.errorf("unexpected '!'")
	case c == '<':
		l.pos++
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return token{kind: tokLE, pos: start}, nil
			case '/':
				l.pos++
				return token{kind: tokLTSlash, pos: start}, nil
			case '>':
				l.pos++
				return token{kind: tokNE, pos: start}, nil
			}
		}
		return token{kind: tokLT, pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGE, pos: start}, nil
		}
		return token{kind: tokGT, pos: start}, nil
	}
	return token{}, l.errorf("unexpected character %q", string(c))
}

// Package experiment implements the measurement harnesses for the
// performance claims of the paper (EXPERIMENTS.md, experiments E10-E14).
// The paper's evaluation is qualitative; these harnesses turn each claim
// into numbers — wall time and, more importantly, tuples shipped between
// mediator and sources, the quantity MIX's lazy evaluation and query
// pushdown minimize. cmd/mixbench prints the tables; bench_test.go wraps
// the same code as Go benchmarks.
package experiment

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"mix"
	"mix/internal/engine"
	"mix/internal/qdom"
	"mix/internal/rewrite"
	"mix/internal/source"
	"mix/internal/wire"
	"mix/internal/workload"
	"mix/internal/xmas"
	"mix/internal/xmlio"
	"mix/internal/xtree"
)

// Table is one experiment's output.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// mediatorOver builds a mediator over a generated customers/orders database
// with the Q1 view registered as rootv.
func mediatorOver(nCustomers, ordersPer int, cfg mix.Config) *mix.Mediator {
	med := mix.NewWith(cfg)
	med.AddRelationalSource(workload.ScaleDB("db1", nCustomers, ordersPer, 42))
	must(med.AliasSource("&root1", "&db1.customer"))
	must(med.AliasSource("&root2", "&db1.orders"))
	mustView(med.DefineView("rootv", workload.Q1))
	return med
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustView(_ *mix.View, err error) {
	if err != nil {
		panic(err)
	}
}

// browse visits the first k CustRec children of a lazy document, descending
// into the customer element and the first OrderInfo of each — the "browse a
// few results and move on" behaviour of paper Section 1.
func browse(doc *mix.Document, k int) int {
	visited := 0
	node := doc.Root().Down()
	for node != nil && visited < k {
		if c := node.Down(); c != nil { // customer element
			c.Down() // its first column
			if oi := c.Right(); oi != nil {
				oi.Down() // the order tuple
			}
		}
		visited++
		node = node.Right()
	}
	return visited
}

// LazyVsEager is experiment E10: time-to-results and tuples shipped as a
// function of how much of the answer the client browses, lazy QDOM vs. the
// conventional full-answer mediator.
func LazyVsEager(sizes []int, ordersPer int, browseKs []int) Table {
	t := Table{
		Title:  "E10 lazy vs eager (Q1 view; browse k of N customers)",
		Note:   "paper claim (§1,§4): demand-driven evaluation fetches only what navigation needs",
		Header: []string{"N", "k", "lazy_shipped", "eager_shipped", "lazy_ms", "eager_ms"},
	}
	for _, n := range sizes {
		for _, k := range browseKs {
			if k > n {
				continue
			}
			// Lazy: open the view, browse k.
			medL := mediatorOver(n, ordersPer, mix.Config{})
			medL.ResetStats()
			start := time.Now()
			docL, err := medL.Open("rootv")
			must(err)
			browse(docL, k)
			lazyDur := time.Since(start)
			docL.Close()
			lazyShipped := medL.Stats().TuplesShipped

			// Eager: materialize everything, then browse k (free).
			medE := mediatorOver(n, ordersPer, mix.Config{})
			medE.ResetStats()
			start = time.Now()
			docE, err := medE.Open("rootv")
			must(err)
			docE.Materialize()
			eagerDur := time.Since(start)
			docE.Close()
			eagerShipped := medE.Stats().TuplesShipped

			t.Rows = append(t.Rows, []string{
				itoa(n), itoa(k),
				i64(lazyShipped), i64(eagerShipped),
				ms(lazyDur), ms(eagerDur),
			})
		}
	}
	return t
}

// Composition is experiment E11: tuples shipped for a selective query over
// the view, naive composition vs. the full rewrite+pushdown pipeline,
// sweeping the selection threshold (order values are uniform in
// [0, 100000), so threshold T keeps ≈(1-T/100000) of orders).
func Composition(sizes []int, thresholds []int64) Table {
	t := Table{
		Title:  "E11 composition: naive vs rewritten+pushed (customers with an order > T)",
		Note:   "paper claim (§6): pushing the combined conditions transfers the minimum amount of data",
		Header: []string{"N", "T", "naive_shipped", "optimized_shipped", "naive_ms", "opt_ms", "results"},
	}
	for _, n := range sizes {
		for _, threshold := range thresholds {
			query := fmt.Sprintf(`
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/orders/value > %d
RETURN $R`, threshold)

			run := func(cfg mix.Config) (int64, time.Duration, int) {
				med := mediatorOver(n, 3, cfg)
				med.ResetStats()
				start := time.Now()
				doc, err := med.Query(query)
				must(err)
				m := doc.Materialize()
				must(doc.Err())
				return med.Stats().TuplesShipped, time.Since(start), len(m.Children)
			}
			naiveShipped, naiveDur, nRes := run(mix.Config{DisableRewrite: true, DisablePushdown: true})
			optShipped, optDur, oRes := run(mix.Config{})
			if nRes != oRes {
				panic(fmt.Sprintf("experiment: result divergence %d vs %d", nRes, oRes))
			}
			t.Rows = append(t.Rows, []string{
				itoa(n), i64(threshold),
				i64(naiveShipped), i64(optShipped),
				ms(naiveDur), ms(optDur), itoa(nRes),
			})
		}
	}
	return t
}

// Decontext is experiment E12: answering an in-place query from a CustRec
// node by decontextualization vs. by materializing the subtree and
// evaluating locally (the strategy the paper rejects).
func Decontext(nCustomers int, ordersPers []int) Table {
	t := Table{
		Title:  "E12 in-place query: decontextualize vs materialize-subtree",
		Note:   "paper claim (§5): conveying the node's identity to the sources beats fetching the subtree",
		Header: []string{"N", "orders/cust", "decon_shipped", "mat_shipped", "decon_ms", "mat_ms"},
	}
	inPlace := `
FOR $O IN document(root)/OrderInfo
WHERE $O/orders/value < 50000
RETURN $O`
	for _, per := range ordersPers {
		navTo := func(med *mix.Mediator) *mix.Node {
			doc, err := med.Open("rootv")
			must(err)
			return doc.Root().Down() // first CustRec
		}

		medD := mediatorOver(nCustomers, per, mix.Config{})
		node := navTo(medD)
		medD.ResetStats()
		start := time.Now()
		docD, err := medD.QueryFrom(node, inPlace)
		must(err)
		docD.Materialize()
		deconDur := time.Since(start)
		deconShipped := medD.Stats().TuplesShipped

		medM := mediatorOver(nCustomers, per, mix.Config{})
		nodeM := navTo(medM)
		medM.ResetStats()
		start = time.Now()
		docM, err := medM.QueryFromMaterialized(nodeM, inPlace)
		must(err)
		docM.Materialize()
		matDur := time.Since(start)
		matShipped := medM.Stats().TuplesShipped

		t.Rows = append(t.Rows, []string{
			itoa(nCustomers), itoa(per),
			i64(deconShipped), i64(matShipped),
			ms(deconDur), ms(matDur),
		})
	}
	return t
}

// GroupBy is experiment E13: the stateless presorted group-by of Table 1 vs
// the buffering stateful one, measured by what reaching the FIRST result
// group costs — in source transfer, in mediator-side operator work (tuples
// produced across the plan), and in latency.
func GroupBy(sizes []int, ordersPer int) Table {
	t := Table{
		Title:  "E13 group-by: presorted (stateless, Table 1) vs stateful (buffered)",
		Note:   "paper claim (§4): with sorted input the stateless gBy streams; otherwise buffers are needed",
		Header: []string{"N", "variant", "shipped_first_group", "mediator_tuples", "ms_first_group"},
	}
	for _, n := range sizes {
		for _, variant := range []string{"presorted", "stateful"} {
			med := mediatorOver(n, ordersPer, mix.Config{})
			view, _ := med.View("rootv")
			plan := view.ExecPlan
			if variant == "stateful" {
				plan = forceStateful(plan)
			}
			prog, err := engine.Compile(plan, med.Catalog())
			must(err)
			med.ResetStats()
			start := time.Now()
			res, metrics := prog.RunWithMetrics()
			doc := qdom.NewDocument(res, nil)
			first := doc.Root().Down()
			if first != nil {
				if c := first.Down(); c != nil {
					c.Right() // first OrderInfo
				}
			}
			dur := time.Since(start)
			t.Rows = append(t.Rows, []string{
				itoa(n), variant,
				i64(med.Stats().TuplesShipped), i64(metrics.Total()), ms(dur),
			})
		}
	}
	return t
}

// forceStateful clones the plan with every group-by downgraded to the
// buffering implementation.
func forceStateful(plan xmas.Op) xmas.Op {
	clone := xmas.Clone(plan)
	var fix func(op xmas.Op) xmas.Op
	fix = func(op xmas.Op) xmas.Op {
		ins := op.Inputs()
		newIns := make([]xmas.Op, len(ins))
		for i, in := range ins {
			newIns[i] = fix(in)
		}
		out := op.WithInputs(newIns...)
		if a, ok := out.(*xmas.Apply); ok {
			a.Plan = fix(a.Plan)
		}
		if gb, ok := out.(*xmas.GroupBy); ok {
			gb.Presorted = false
		}
		return out
	}
	return fix(clone)
}

// Ablation is experiment E14: which optimizer stages buy how much, measured
// on the Figure 12 composition.
func Ablation(nCustomers int) Table {
	t := Table{
		Title:  "E14 optimizer ablation (Figure 12 query over the Q1 view)",
		Note:   "paper §6 bullets: object-construction removal, condition combination, semijoin pushdown",
		Header: []string{"variant", "shipped", "mediator_tuples", "ms"},
	}
	query := `
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/orders/value > 90000
RETURN $R`
	variants := []struct {
		name string
		cfg  mix.Config
	}{
		{"full", mix.Config{}},
		{"no-semijoin-push", mix.Config{RewriteOptions: rewrite.Options{NoSemijoinPush: true}}},
		{"no-dead-elim", mix.Config{RewriteOptions: rewrite.Options{NoDeadElim: true}}},
		{"no-sql-pushdown", mix.Config{DisablePushdown: true}},
		{"no-rewrite", mix.Config{DisableRewrite: true, DisablePushdown: true}},
	}
	var baseline int
	for _, v := range variants {
		med := mediatorOver(nCustomers, 3, v.cfg)
		med.ResetStats()
		start := time.Now()
		doc, metrics, err := med.QueryWithMetrics(query)
		must(err)
		m := doc.Materialize()
		must(doc.Err())
		dur := time.Since(start)
		if v.name == "full" {
			baseline = len(m.Children)
		} else if len(m.Children) != baseline {
			panic(fmt.Sprintf("experiment: ablation %s diverged: %d vs %d",
				v.name, len(m.Children), baseline))
		}
		t.Rows = append(t.Rows, []string{
			v.name, i64(med.Stats().TuplesShipped), i64(metrics.Total()), ms(dur),
		})
	}
	return t
}

// ---- E19: vectorized execution, path index, binary wire codec ----

// VectorResult is E19's machine-readable output (BENCH_vector.json): the
// CPU-bound microbench times for the columnar batch path, the dataguide
// index, and the bytes-on-wire comparison between the JSON and binary
// codecs.
type VectorResult struct {
	JoinScalarMs   float64 `json:"join_scalar_ms"`
	JoinVecMs      float64 `json:"join_vec_ms"`
	JoinSpeedup    float64 `json:"join_speedup"`
	SelectScalarMs float64 `json:"select_scalar_ms"`
	SelectVecMs    float64 `json:"select_vec_ms"`
	SelectSpeedup  float64 `json:"select_speedup"`
	GetDWalkMs     float64 `json:"getd_walk_ms"`
	GetDIndexMs    float64 `json:"getd_index_ms"`
	GetDSpeedup    float64 `json:"getd_speedup"`
	WireJSONBytes  int64   `json:"wire_json_bytes"`
	WireBinBytes   int64   `json:"wire_binary_bytes"`
	WireBinRatio   float64 `json:"wire_binary_over_json"`

	// WindowSweep records the BatchExec window-cap sweep over the mediator
	// workloads: the CPU-bound join microbench and a full E10-style query
	// over the view per cap, plus the tuples a browse-1 ships (navigation
	// sessions always run tuple-at-a-time, so this must not grow with the
	// cap). BestWindow is the sweet spot by combined time among the
	// vectorized caps; DefaultBatchExec is the window mix.Config bakes in
	// as its zero-value default.
	WindowSweep      []WindowPoint `json:"window_sweep,omitempty"`
	BestWindow       int           `json:"best_window,omitempty"`
	DefaultBatchExec int           `json:"default_batch_exec,omitempty"`
}

// WindowPoint is one BatchExec cap in the window sweep.
type WindowPoint struct {
	Window        int     `json:"window"`
	JoinMs        float64 `json:"join_ms"`
	ViewMs        float64 `json:"view_ms"`
	BrowseShipped int64   `json:"browse1_shipped"`
}

// Check gates CI on the headline claims: the batch path must beat the
// tuple-at-a-time interpreter by at least 5x on the CPU-bound join
// microbench, and the negotiated binary codec must move fewer bytes than
// JSON for the same session.
func (r VectorResult) Check() error {
	if r.JoinSpeedup < 5 {
		return fmt.Errorf("vector check: join speedup %.2fx < 5x (scalar %.1fms, vec %.1fms)",
			r.JoinSpeedup, r.JoinScalarMs, r.JoinVecMs)
	}
	// The select-over-product bench is gather-bound, not predicate-bound, so
	// its ratio sits near 1x; the gate only catches a catastrophic batch-path
	// regression without flaking on timing noise.
	if r.SelectSpeedup < 0.7 {
		return fmt.Errorf("vector check: vectorized select regressed vs scalar (%.1fms vs %.1fms)",
			r.SelectVecMs, r.SelectScalarMs)
	}
	if r.WireBinBytes >= r.WireJSONBytes {
		return fmt.Errorf("vector check: binary codec moved %d bytes, JSON %d", r.WireBinBytes, r.WireJSONBytes)
	}
	// Vectorization is on by default, so a browse-1 must ship exactly what
	// the scalar interpreter ships at every window cap — navigation
	// sessions execute tuple-at-a-time by design, and this gate is the
	// regression fence on that contract.
	for _, p := range r.WindowSweep {
		if len(r.WindowSweep) > 0 && p.BrowseShipped != r.WindowSweep[0].BrowseShipped {
			return fmt.Errorf("vector check: browse-1 shipped %d tuples at window %d, %d at window %d — batch overshoot",
				p.BrowseShipped, p.Window, r.WindowSweep[0].BrowseShipped, r.WindowSweep[0].Window)
		}
	}
	return nil
}

// WriteVectorJSON records the measured result with run metadata, in the
// style of the other BENCH_*.json baselines.
func WriteVectorJSON(path, workload string, r VectorResult) error {
	doc := struct {
		Suite    string       `json:"suite"`
		Workload string       `json:"workload"`
		Command  string       `json:"command"`
		Date     string       `json:"date"`
		Results  VectorResult `json:"results"`
	}{
		Suite:    "mixbench vector (E19)",
		Workload: workload,
		Command:  "go run ./cmd/mixbench -exp vector -check",
		Date:     time.Now().Format("2006-01-02"),
		Results:  r,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// numList builds <list> of n <item><v>value</v></item> children.
func numList(prefix string, n int, val func(i int) int) *xtree.Node {
	items := make([]*xtree.Node, n)
	for i := range items {
		items[i] = xtree.NewElem(xtree.ID(fmt.Sprintf("%s.%d", prefix, i)), "item",
			xtree.NewElem(xtree.ID(fmt.Sprintf("%s.%d.v", prefix, i)), "v",
				xtree.Text(strconv.Itoa(val(i)))))
	}
	return xtree.NewElem(xtree.ID(prefix), "list", items...)
}

// timePlan compiles and runs plan `runs` times under opts, returning the
// total wall time and the first run's serialized answer (divergence check).
func timePlan(plan xmas.Op, cat *source.Catalog, opts engine.Options, runs int) (time.Duration, string) {
	var out string
	start := time.Now()
	for i := 0; i < runs; i++ {
		prog, err := engine.CompileWith(plan, cat, opts)
		must(err)
		res := prog.Run()
		m := res.Materialize()
		must(res.Err())
		if i == 0 {
			out = xmlio.Serialize(m)
		}
	}
	return time.Since(start), out
}

// srcOverPath is mkSrc → getD: bind every node reached by path from the
// document's top-level elements (mkSrc ranges over the root's children, so
// the path starts at their labels).
func srcOverPath(srcID string, rootVar, outVar xmas.Var, path ...string) xmas.Op {
	return &xmas.GetD{
		In:   &xmas.MkSrc{SrcID: srcID, Out: rootVar},
		From: rootVar,
		Path: path,
		Out:  outVar,
	}
}

// wireSessionBytes runs one E15-style deep batched walk of the Q1 view over
// an in-memory connection and returns the client's total bytes on the wire,
// with or without the negotiated binary codec.
func wireSessionBytes(nCustomers int, binaryCodec bool) int64 {
	med := mediatorOver(nCustomers, 3, mix.Config{})
	server, client := net.Pipe()
	srv := wire.NewServer(med)
	srv.BinaryWire = binaryCodec
	go func() {
		defer server.Close()
		_ = srv.ServeConn(server)
	}()
	c := wire.NewClientConfig(client, wire.ClientConfig{BinaryWire: binaryCodec})
	defer c.Close()
	root, err := c.Open("rootv")
	must(err)
	node, err := root.DownScan(wire.ScanConfig{Deep: true})
	must(err)
	for node != nil {
		_, err := node.Materialize()
		must(err)
		next, err := node.Right()
		must(err)
		must(node.Release())
		node = next
	}
	must(root.Release())
	st := c.WireStats()
	if st.BinaryWire != binaryCodec {
		panic(fmt.Sprintf("experiment: wire codec negotiation: binary=%v, want %v", st.BinaryWire, binaryCodec))
	}
	return st.BytesSent + st.BytesRecv
}

// Vectorized is experiment E19: the columnar batch path vs the
// tuple-at-a-time interpreter on CPU-bound local operators, the dataguide
// path index vs the label walk, and the binary wire codec vs JSON on a
// deep batched view walk.
func Vectorized(nJoin, runs int) (Table, VectorResult) {
	var r VectorResult
	t := Table{
		Title: "E19 vectorized execution & wire codec",
		Note: "batch path and path index must answer byte-identically to the scalar walk;\n" +
			"the binary codec must move fewer bytes than JSON for the same session",
		Header: []string{"microbench", "baseline", "optimized", "speedup"},
	}

	// CPU-bound NL join: every (left, right) pair is compared; the scalar
	// interpreter re-parses both comparands per pair, the batch path
	// pre-resolves each column once.
	cat := source.NewCatalog()
	cat.AddXMLDoc("&vl", numList("&vl", nJoin, func(i int) int { return i }))
	cat.AddXMLDoc("&vr", numList("&vr", nJoin, func(i int) int {
		if i == 0 {
			return -1 // a single matching row keeps the join non-degenerate
		}
		return nJoin + i
	}))
	joinCond := xmas.NewVarVarCond("$lv", xtree.OpGT, "$rv")
	joinPlan := &xmas.TD{
		In: &xmas.Join{
			L:    srcOverPath("&vl", "$L", "$lv", "item", "v"),
			R:    srcOverPath("&vr", "$R", "$rv", "item", "v"),
			Cond: &joinCond,
		},
		V: "$lv",
	}
	must(xmas.Verify(joinPlan))
	scalarDur, scalarOut := timePlan(joinPlan, cat, engine.Options{}, runs)
	vecDur, vecOut := timePlan(joinPlan, cat, engine.Options{BatchExec: 64}, runs)
	if scalarOut != vecOut {
		panic("experiment: vectorized join diverged from scalar")
	}
	r.JoinScalarMs = msF(scalarDur)
	r.JoinVecMs = msF(vecDur)
	r.JoinSpeedup = ratio(scalarDur, vecDur)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("NL join %dx%d", nJoin, nJoin),
		ms(scalarDur) + "ms", ms(vecDur) + "ms", speedup(r.JoinSpeedup),
	})

	// CPU-bound select: the same predicate evaluated over the cross product
	// (a condition-less join), so selection work — not tuple materialization
	// — dominates. The scalar interpreter merges and re-parses per pair; the
	// batch path compares pre-resolved columns.
	selPlan := &xmas.TD{
		In: &xmas.Select{
			In: &xmas.Join{
				L: srcOverPath("&vl", "$L", "$lv", "item", "v"),
				R: srcOverPath("&vr", "$R", "$rv", "item", "v"),
			},
			Cond: joinCond,
		},
		V: "$lv",
	}
	must(xmas.Verify(selPlan))
	selScalar, selScalarOut := timePlan(selPlan, cat, engine.Options{}, runs)
	selVec, selVecOut := timePlan(selPlan, cat, engine.Options{BatchExec: 64}, runs)
	if selScalarOut != selVecOut {
		panic("experiment: vectorized select diverged from scalar")
	}
	if selScalarOut != scalarOut {
		panic("experiment: select-over-product diverged from the join")
	}
	r.SelectScalarMs = msF(selScalar)
	r.SelectVecMs = msF(selVec)
	r.SelectSpeedup = ratio(selScalar, selVec)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("select over %d pairs", nJoin*nJoin),
		ms(selScalar) + "ms", ms(selVec) + "ms", speedup(r.SelectSpeedup),
	})

	// getD over a bushy document: the walk explores every label-matching
	// prefix chain, the dataguide jumps to the 1%% of chains that complete.
	const fanout = 120
	idxCat := source.NewCatalog()
	outer := make([]*xtree.Node, fanout)
	for i := range outer {
		inner := make([]*xtree.Node, fanout)
		for j := range inner {
			id := fmt.Sprintf("&vp.%d.%d", i, j)
			if j%100 == 0 {
				inner[j] = xtree.NewElem(xtree.ID(id), "a",
					xtree.NewElem(xtree.ID(id+".v"), "v", xtree.Text(strconv.Itoa(i*fanout+j))))
			} else {
				inner[j] = xtree.NewElem(xtree.ID(id), "a")
			}
		}
		outer[i] = xtree.NewElem(xtree.ID(fmt.Sprintf("&vp.%d", i)), "a", inner...)
	}
	idxCat.AddXMLDoc("&vp", xtree.NewElem("&vp", "list", outer...))
	pathPlan := &xmas.TD{In: srcOverPath("&vp", "$D", "$v", "a", "a", "v"), V: "$v"}
	must(xmas.Verify(pathPlan))
	pathRuns := runs * 40 // the probe is fast; repeat for a measurable window
	walkDur, walkOut := timePlan(pathPlan, idxCat, engine.Options{}, pathRuns)
	idxDur, idxOut := timePlan(pathPlan, idxCat, engine.Options{PathIndex: true}, pathRuns)
	if walkOut != idxOut {
		panic("experiment: path-index getD diverged from the walk")
	}
	r.GetDWalkMs = msF(walkDur)
	r.GetDIndexMs = msF(idxDur)
	r.GetDSpeedup = ratio(walkDur, idxDur)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("getD list/a/a/v, %d chains", fanout*fanout),
		ms(walkDur) + "ms", ms(idxDur) + "ms", speedup(r.GetDSpeedup),
	})

	// BatchExec window-cap sweep over the mediator workloads: the CPU-bound
	// join microbench and a full E10-style query over the Q1 view, per cap,
	// plus the tuples a browse-1 ships. Window 1 is the scalar interpreter.
	// The browse column must not move with the cap: navigation sessions
	// (Open) always execute tuple-at-a-time — that design is what made
	// flipping vectorized execution on by default safe, and this sweep is
	// the regression gate on it.
	const sweepN, sweepOrders = 300, 5
	const sweepQ = `FOR $R IN document(rootv)/CustRec RETURN $R`
	for _, w := range []int{1, 8, 16, 32, 64, 128, 256} {
		jd, jOut := timePlan(joinPlan, cat, engine.Options{BatchExec: w}, runs)
		if jOut != scalarOut {
			panic("experiment: window-sweep join diverged from scalar")
		}
		medV := mediatorOver(sweepN, sweepOrders, mix.Config{BatchExec: w})
		start := time.Now()
		docV, err := medV.Query(sweepQ)
		must(err)
		docV.Materialize()
		must(docV.Err())
		viewDur := time.Since(start)
		docV.Close()

		medB := mediatorOver(sweepN, sweepOrders, mix.Config{BatchExec: w})
		medB.ResetStats()
		docB, err := medB.Open("rootv")
		must(err)
		browse(docB, 1)
		shipped := medB.Stats().TuplesShipped
		docB.Close()

		r.WindowSweep = append(r.WindowSweep, WindowPoint{
			Window: w, JoinMs: msF(jd), ViewMs: msF(viewDur), BrowseShipped: shipped,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("window cap %d", w),
			fmt.Sprintf("join %sms", ms(jd)),
			fmt.Sprintf("view %sms", ms(viewDur)),
			fmt.Sprintf("browse-1 ships %d", shipped),
		})
	}
	best := r.WindowSweep[1]
	for _, p := range r.WindowSweep[1:] {
		if p.JoinMs+p.ViewMs < best.JoinMs+best.ViewMs {
			best = p
		}
	}
	r.BestWindow = best.Window
	r.DefaultBatchExec = mix.DefaultBatchExec

	// Bytes on the wire for the same deep batched walk, JSON vs negotiated
	// binary (the E15 scenario's transfer, re-measured under the codec).
	r.WireJSONBytes = wireSessionBytes(200, false)
	r.WireBinBytes = wireSessionBytes(200, true)
	r.WireBinRatio = float64(r.WireBinBytes) / float64(r.WireJSONBytes)
	t.Rows = append(t.Rows, []string{
		"wire bytes, deep walk of 200 CustRec",
		fmt.Sprintf("%dB json", r.WireJSONBytes),
		fmt.Sprintf("%dB binary", r.WireBinBytes),
		fmt.Sprintf("%.2fx", 1/r.WireBinRatio),
	})
	return t, r
}

func msF(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func ratio(base, opt time.Duration) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

func speedup(v float64) string { return fmt.Sprintf("%.1fx", v) }

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func i64(v int64) string { return fmt.Sprintf("%d", v) }

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

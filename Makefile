GO ?= go

.PHONY: build test race verify-static mixvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

mixvet:
	$(GO) run ./cmd/mixvet ./...

# verify-static runs every static check the CI verify-static job runs.
# staticcheck and govulncheck are skipped (with a notice) when the pinned
# binaries are not on PATH, so the target works offline; CI installs them.
verify-static: mixvet
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "verify-static: staticcheck not installed, skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "verify-static: govulncheck not installed, skipping (CI runs it)"; \
	fi

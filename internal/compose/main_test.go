package compose_test

import (
	"os"
	"testing"

	"mix/internal/xmas"
)

// The compose suite runs with the debug gate on: composed plans go through
// the full static verifier, not just well-formedness validation.
func TestMain(m *testing.M) {
	xmas.SetDebug(true)
	os.Exit(m.Run())
}

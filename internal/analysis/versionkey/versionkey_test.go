package versionkey_test

import (
	"testing"

	"mix/internal/analysis/analysistest"
	"mix/internal/analysis/versionkey"
)

func TestVersionKey(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", versionkey.Analyzer)
}

package goroutinelife_test

import (
	"testing"

	"mix/internal/analysis/analysistest"
	"mix/internal/analysis/goroutinelife"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, "testdata/src/engine", goroutinelife.Analyzer)
}

func TestGoroutineLifeShardFanOut(t *testing.T) {
	analysistest.Run(t, "testdata/src/shard", goroutinelife.Analyzer)
}

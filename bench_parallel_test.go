package mix_test

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mix"
	"mix/internal/faultnet"
	"mix/internal/wire"
)

// The BenchmarkParallelFedJoin* family measures intra-query parallelism: an
// upper mediator joining two remote (wire) sources, each reached over
// net.Pipe with a 2ms per-I/O latency injected via faultnet. Sequential
// evaluation pays the two scans back-to-back; Parallelism > 1 overlaps them
// (async source open + exchange operators) and compounds with batched
// prefetch, so wall clock approaches the slower single scan instead of the
// sum. BENCH_engine.json records the committed baseline.

const (
	parBenchItems   = 96
	parBenchFields  = 8
	parBenchLatency = 2 * time.Millisecond
)

// parBenchXML builds an element-dense document: each item carries a join key
// and parBenchFields payload fields, so frames are large and mediator-side
// parse work is non-trivial (the part parallelism can hide behind I/O).
func parBenchXML(n int) string {
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<item><k>k%d</k>", i)
		for f := 0; f < parBenchFields; f++ {
			fmt.Fprintf(&sb, "<f%d>payload-%d-%d</f%d>", f, i, f, f)
		}
		sb.WriteString("</item>")
	}
	sb.WriteString("</doc>")
	return sb.String()
}

func parBenchLower(b *testing.B) *mix.Mediator {
	b.Helper()
	med := mix.New()
	if err := med.AddXMLSource("&flat", parBenchXML(parBenchItems)); err != nil {
		b.Fatal(err)
	}
	if _, err := med.DefineView("flatv", `
FOR $I IN document(&flat)/item
RETURN <It> $I </It>`); err != nil {
		b.Fatal(err)
	}
	return med
}

const parBenchQuery = `
FOR $A IN document(&ra)/It, $B IN document(&rb)/It
WHERE $A/item/k = $B/item/k
RETURN <P> $A $B </P>`

func benchParallelFedJoin(b *testing.B, parallelism int) {
	lowerA, lowerB := parBenchLower(b), parBenchLower(b)
	dial := func(med *mix.Mediator) (*wire.Client, func()) {
		server, client := net.Pipe()
		srv := wire.NewServer(med)
		go func() {
			defer server.Close()
			_ = srv.ServeConn(server)
		}()
		conn := faultnet.Wrap(client, faultnet.Config{LatencyProb: 1, Latency: parBenchLatency})
		c := wire.NewClientConfig(conn, wire.ClientConfig{})
		return c, func() { _ = c.Close() }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Connection setup (dial + remote open) is identical across
		// parallelism levels and excluded: the measured quantity is query
		// evaluation — scans, join, materialization.
		b.StopTimer()
		ca, closeA := dial(lowerA)
		cb, closeB := dial(lowerB)
		rootA, err := ca.Open("flatv")
		if err != nil {
			b.Fatal(err)
		}
		rootB, err := cb.Open("flatv")
		if err != nil {
			b.Fatal(err)
		}
		upper := mix.NewWith(mix.Config{Parallelism: parallelism})
		upper.Catalog().AddDoc("&ra", wire.NewRemoteDoc("&ra", rootA))
		upper.Catalog().AddDoc("&rb", wire.NewRemoteDoc("&rb", rootB))
		b.StartTimer()
		doc, err := upper.Query(parBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		m := doc.Materialize()
		if err := doc.Err(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if len(m.Children) != parBenchItems {
			b.Fatalf("join produced %d matches, want %d", len(m.Children), parBenchItems)
		}
		doc.Close()
		closeA()
		closeB()
		b.StartTimer()
	}
}

func BenchmarkParallelFedJoinSeq(b *testing.B)  { benchParallelFedJoin(b, 1) }
func BenchmarkParallelFedJoinPar2(b *testing.B) { benchParallelFedJoin(b, 2) }
func BenchmarkParallelFedJoinPar4(b *testing.B) { benchParallelFedJoin(b, 4) }

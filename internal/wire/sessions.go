package wire

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync/atomic"
	"time"

	"mix"
)

// Defaults for the session-scale front end. Every admission/quota knob is
// off at its zero value: a Server with no limits set behaves exactly like
// the unlimited implementation, byte-for-byte on the wire.
const (
	// DefaultRetryAfter is the retry hint a busy response carries when
	// Server.RetryAfter is unset.
	DefaultRetryAfter = 50 * time.Millisecond
	// DefaultResumeWindow is how long an evicted or disconnected session's
	// resume token stays valid when Server.ResumeWindow is unset.
	DefaultResumeWindow = time.Minute
	// minShedIdle is the hard floor on how long a session must have been
	// idle before admission-pressure shedding may displace it; the
	// effective bar is shedAfter, which scales with SessionIdle. A session
	// actively mid-op is never shed.
	minShedIdle = 10 * time.Millisecond
	// DefaultShedIdle is the shed bar when SessionIdle is unset. It is
	// deliberately much larger than minShedIdle: under an arrival storm a
	// walking session can look "idle" for whole scheduler quanta between
	// its ops, and shedding those just trades one live session for another
	// — mutual-eviction thrash where nobody finishes. Only sessions parked
	// well past any plausible inter-op gap are fair game.
	DefaultShedIdle = 100 * time.Millisecond
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("wire: server closed")

// sessionRecord is what survives a session's eviction or disconnect: the
// resume token plus the accounting that rides along when the client comes
// back. Node handles do NOT survive — the reconnected client re-acquires
// them by replaying its recorded navigation paths (the redial machinery) —
// so a record is a few dozen bytes and parking thousands is cheap.
type sessionRecord struct {
	token   string
	retired time.Time // when the session left the live table
	opNanos int64
	resumes int64
}

// limitsOn reports whether any session-scale knob is set. With all knobs at
// their zero values the server runs the exact pre-session protocol: no
// admission step, no tokens, no per-op accounting.
func (s *Server) limitsOn() bool {
	return s.MaxSessions > 0 || s.SessionIdle > 0 || s.SessionMem > 0 || s.SessionOpTime > 0
}

func (s *Server) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

func (s *Server) retryAfter() time.Duration {
	if s.RetryAfter > 0 {
		return s.RetryAfter
	}
	return DefaultRetryAfter
}

func (s *Server) resumeWindow() time.Duration {
	if s.ResumeWindow > 0 {
		return s.ResumeWindow
	}
	return DefaultResumeWindow
}

// busyResponse is the typed admission rejection for request id.
func (s *Server) busyResponse(id int64) Response {
	return Response{
		ID:           id,
		OK:           false,
		Busy:         true,
		RetryAfterMs: s.retryAfter().Milliseconds(),
		Error:        "server busy: session limit reached, retry later",
	}
}

// newToken mints a resumable session token. Tokens are capability-style
// random strings: presenting one is the proof of ownership, so they must be
// unguessable.
func newToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// an unresumable session rather than a guessable token.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// register adds a live session to the table (any mode).
func (s *Server) register(sess *session) {
	s.sessMu.Lock()
	s.registerLocked(sess)
	s.sessMu.Unlock()
}

func (s *Server) registerLocked(sess *session) {
	if s.sessions == nil {
		s.sessions = map[*session]struct{}{}
	}
	s.sessions[sess] = struct{}{}
	sess.admitted = true
	s.accepted.Add(1)
	if n := int64(len(s.sessions)); n > s.peak.Load() {
		s.peak.Store(n)
	}
}

// finish tears a session down at connection end: deregister, park its
// resume record (so a redialing client can still resume), and return its
// outstanding frame bytes to the server total. Idempotent with eviction.
func (s *Server) finish(sess *session) {
	s.sessMu.Lock()
	delete(s.sessions, sess)
	s.retireLocked(sess)
	s.sessMu.Unlock()
	s.memTotal.Add(-sess.drainMem())
}

// retireLocked parks sess's resume record (sessMu held; idempotent). A
// session without a token (server running without limits, or a failed token
// mint) leaves nothing behind.
func (s *Server) retireLocked(sess *session) {
	if sess.retired || sess.token == "" {
		return
	}
	sess.retired = true
	if s.resumable == nil {
		s.resumable = map[string]*sessionRecord{}
	}
	s.resumable[sess.token] = &sessionRecord{
		token:   sess.token,
		retired: s.now(),
		opNanos: sess.opNanos.Load(),
		resumes: sess.resumes,
	}
}

// admit runs admission control for a session's first request and reports
// whether the session may proceed. A resume op presenting a live token
// re-attaches the retired session's record and is admitted even at capacity
// — that session's load was accounted for when it was first admitted, and
// shedding rebalances any transient overshoot. A fresh session at capacity
// triggers graceful shedding (the idlest sheddable session is evicted to a
// resumable record); when nothing is sheddable the session is rejected with
// the typed busy response.
func (s *Server) admit(sess *session, req *Request) bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.draining {
		return false
	}
	if req.Op == "resume" && req.Token != "" {
		rec, ok := s.resumable[req.Token]
		if ok && s.now().Sub(rec.retired) > s.resumeWindow() {
			// The clock's pruning is garbage collection, not the source of
			// truth — a token past the window is dead even if its record is
			// still parked.
			delete(s.resumable, req.Token)
			ok = false
		}
		if ok {
			delete(s.resumable, req.Token)
			sess.token = rec.token
			sess.opNanos.Store(rec.opNanos)
			sess.resumes = rec.resumes + 1
			s.registerLocked(sess)
			s.resumed.Add(1)
			if s.MaxSessions > 0 && len(s.sessions) > s.MaxSessions {
				if v := s.shedCandidateLocked(sess); v != nil {
					s.evictLocked(v, &s.shed)
				}
			}
			return true
		}
		// Dead token (expired or never ours): fall through to fresh
		// admission; on success the resume response carries a new token.
		s.resumeExpired.Add(1)
	}
	if s.MaxSessions > 0 && len(s.sessions) >= s.MaxSessions {
		if v := s.shedCandidateLocked(sess); v != nil {
			s.evictLocked(v, &s.shed)
		}
		if len(s.sessions) >= s.MaxSessions {
			return false
		}
	}
	sess.token = newToken()
	s.registerLocked(sess)
	return true
}

// shedAfter is the idle bar admission-pressure shedding applies: half the
// idle-eviction threshold when one is set (a sheddable session is already
// halfway to eviction anyway), DefaultShedIdle otherwise, never below
// minShedIdle.
func (s *Server) shedAfter() time.Duration {
	if s.SessionIdle > 0 {
		if d := s.SessionIdle / 2; d > minShedIdle {
			return d
		}
		return minShedIdle
	}
	return DefaultShedIdle
}

// shedCandidateLocked picks the session to shed under admission pressure
// (sessMu held): the idlest session past shedAfter, heaviest outstanding
// frame bytes breaking ties. Sessions with an op in flight are never shed —
// graceful means idle work is displaced, not active work killed; over-quota
// active sessions are the eviction clock's job.
func (s *Server) shedCandidateLocked(exclude *session) *session {
	now := s.now()
	bar := s.shedAfter()
	var best *session
	var bestIdle time.Duration
	var bestMem int64
	for sess := range s.sessions {
		if sess == exclude || sess.token == "" || sess.inflight.Load() > 0 {
			continue
		}
		idle := now.Sub(sess.lastActiveTime())
		if idle < bar {
			continue
		}
		mem := sess.memNow()
		if best == nil || idle > bestIdle || (idle == bestIdle && mem > bestMem) {
			best, bestIdle, bestMem = sess, idle, mem
		}
	}
	return best
}

// evictLocked removes victim from the live table, parks its resume record,
// bumps counter, and closes its connection — which unblocks the session's
// read loop, so its goroutine winds down and finish reconciles the memory
// accounting. The victim's client sees a transport error, redials, and
// resumes with its token.
func (s *Server) evictLocked(victim *session, counter *atomic.Int64) {
	delete(s.sessions, victim)
	s.retireLocked(victim)
	counter.Add(1)
	if victim.closer != nil {
		_ = victim.closer.Close()
	}
}

// EvictIdle evicts every admitted session that has been idle (no request
// activity) for at least olderThan and has no op in flight, returning how
// many were evicted. The eviction clock calls this with Server.SessionIdle;
// tests and operators may call it directly.
func (s *Server) EvictIdle(olderThan time.Duration) int {
	now := s.now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	n := 0
	for sess := range s.sessions {
		if sess.token == "" || sess.inflight.Load() > 0 {
			continue
		}
		if now.Sub(sess.lastActiveTime()) >= olderThan {
			s.evictLocked(sess, &s.idleEvicted)
			n++
		}
	}
	return n
}

// evictOverOpTime evicts sessions whose cumulative op wall-clock exceeded
// the quota. Unlike idle eviction this displaces heavy sessions, so it only
// fires between their ops (inflight 0): the op that crossed the line
// completes, then the session is evicted to a resumable record.
func (s *Server) evictOverOpTime(quota time.Duration) int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	n := 0
	for sess := range s.sessions {
		if sess.token == "" || sess.inflight.Load() > 0 {
			continue
		}
		if time.Duration(sess.opNanos.Load()) > quota {
			s.evictLocked(sess, &s.opTimeEvicted)
			n++
		}
	}
	return n
}

// pruneResumable drops resume records older than the resume window.
func (s *Server) pruneResumable() {
	cutoff := s.now().Add(-s.resumeWindow())
	s.sessMu.Lock()
	for token, rec := range s.resumable {
		if rec.retired.Before(cutoff) {
			delete(s.resumable, token)
		}
	}
	s.sessMu.Unlock()
}

// startClock starts the eviction clock once: a background ticker driving
// idle eviction, op-time-quota eviction, and resume-record expiry. Started
// lazily by the first session under limits; stopped by Shutdown/Close.
func (s *Server) startClock() {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.clockStop != nil || s.draining {
		return
	}
	stop := make(chan struct{})
	s.clockStop = stop
	interval := s.clockInterval()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.tick()
			}
		}
	}()
}

// clockInterval derives the tick period from the tightest enabled quota:
// a quarter of the smallest of SessionIdle/SessionOpTime, clamped to
// [5ms, 1s]; 250ms when neither is set (the clock then only prunes
// resume records).
func (s *Server) clockInterval() time.Duration {
	var d time.Duration
	pick := func(v time.Duration) {
		if v > 0 && (d == 0 || v < d) {
			d = v
		}
	}
	pick(s.SessionIdle)
	pick(s.SessionOpTime)
	if d == 0 {
		return 250 * time.Millisecond
	}
	d /= 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// tick is one eviction-clock step.
func (s *Server) tick() {
	if s.SessionIdle > 0 {
		s.EvictIdle(s.SessionIdle)
	}
	if s.SessionOpTime > 0 {
		s.evictOverOpTime(s.SessionOpTime)
	}
	s.pruneResumable()
}

func (s *Server) isDraining() bool {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.draining
}

// inflightOps sums ops currently executing across live sessions.
func (s *Server) inflightOps() int64 {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	var n int64
	for sess := range s.sessions {
		n += sess.inflight.Load()
	}
	return n
}

// Shutdown drains the server gracefully: stop accepting (Serve returns
// ErrServerClosed), reject new sessions with busy, stop the eviction clock,
// wait for in-flight ops to complete (bounded by ctx), then close every
// session connection. It returns ctx.Err() when the deadline cut the drain
// short and nil otherwise; safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.sessMu.Lock()
	s.draining = true
	l := s.listener
	s.listener = nil
	stop := s.clockStop
	s.clockStop = nil
	s.sessMu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	if stop != nil {
		close(stop)
	}
	var err error
drain:
	for s.inflightOps() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break drain
		case <-time.After(2 * time.Millisecond):
		}
	}
	s.sessMu.Lock()
	for sess := range s.sessions {
		delete(s.sessions, sess)
		s.retireLocked(sess)
		if sess.closer != nil {
			_ = sess.closer.Close()
		}
	}
	s.sessMu.Unlock()
	return err
}

// Close shuts the server down immediately: no drain wait, connections
// closed mid-op. Prefer Shutdown for production stops.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
	return nil
}

// SessionStats snapshots the session-lifecycle counters. NewServer
// registers this with the mediator, so Mediator.HealthReport carries the
// same numbers.
func (s *Server) SessionStats() mix.SessionStats {
	s.sessMu.Lock()
	live := int64(len(s.sessions))
	resumable := int64(len(s.resumable))
	s.sessMu.Unlock()
	return mix.SessionStats{
		Live:          live,
		Peak:          s.peak.Load(),
		Accepted:      s.accepted.Load(),
		RejectedBusy:  s.rejectedBusy.Load(),
		Shed:          s.shed.Load(),
		IdleEvicted:   s.idleEvicted.Load(),
		OpTimeEvicted: s.opTimeEvicted.Load(),
		Resumed:       s.resumed.Load(),
		ResumeExpired: s.resumeExpired.Load(),
		Resumable:     resumable,
		MemBytes:      s.memTotal.Load(),
	}
}

// serveReq runs one request with per-session accounting: activity
// timestamps bracket the op (the idle clock measures gaps between requests,
// not op duration), inflight guards the op against shedding, and the
// wall-clock spent is charged against the session's op-time quota. Only
// invoked under session limits — the unlimited path calls handle directly.
func (s *Server) serveReq(sess *session, req Request) Response {
	start := s.now()
	sess.touch(start)
	sess.inflight.Add(1)
	// Release in a defer: a panic inside handle (bad op payload, a source
	// blowing up mid-navigation) must not leave the session pinned as
	// in-flight forever — shedding skips in-flight sessions and Shutdown
	// drains them, so one leaked unit stalls graceful drain for good.
	defer func() {
		sess.inflight.Add(-1)
		end := s.now()
		sess.opNanos.Add(end.Sub(start).Nanoseconds())
		sess.touch(end)
	}()
	return sess.handle(req)
}

// isTemporaryNetErr matches transient accept failures (EMFILE, ECONNABORTED
// and friends) that an accept loop must back off from and outlive rather
// than die on. Matching our own interface instead of net.Error keeps us off
// the deprecated Temporary method of concrete error types we don't own.
func isTemporaryNetErr(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

package workload_test

import (
	"math/rand"
	"testing"

	"mix/internal/workload"
	"mix/internal/xquery"
)

// TestRandomViewQueryAlwaysParses: the generator's whole output space is
// syntactically valid (differential tests depend on it).
func TestRandomViewQueryAlwaysParses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		src := workload.RandomViewQuery(rng)
		if _, err := xquery.Parse(src); err != nil {
			t.Fatalf("unparsable generated query:\n%s\n%v", src, err)
		}
	}
}

func TestRandomInPlaceQueryTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"list", "CustRec", "Wrap", "OrderInfo", "customer"}
	for _, label := range labels {
		for i := 0; i < 50; i++ {
			src, ok := workload.RandomInPlaceQuery(rng, label)
			if !ok {
				t.Fatalf("no template for %s", label)
			}
			if _, err := xquery.Parse(src); err != nil {
				t.Fatalf("unparsable in-place query for %s:\n%s\n%v", label, src, err)
			}
		}
	}
	if _, ok := workload.RandomInPlaceQuery(rng, "no-such-label"); ok {
		t.Fatal("unknown label must have no template")
	}
}

package engine

import (
	"strings"
	"testing"

	"mix/internal/xmas"
)

// orderedInput builds a cursor of tuples [$G, $V] sorted on $G, simulating
// the presorted input of paper Table 1. pulls counts upstream pulls.
func orderedInput(pairs [][2]string, pulls *int) Cursor {
	schema := []xmas.Var{"$G", "$V"}
	i := 0
	return cursorFunc(func() (Tuple, bool, error) {
		if i >= len(pairs) {
			return Tuple{}, false, nil
		}
		p := pairs[i]
		i++
		*pulls++
		return NewTuple(schema, []Value{
			NodeVal{E: NewLeaf("&g"+p[0], p[0])},
			NodeVal{E: NewLeaf("&v"+p[1], p[1])},
		}), true, nil
	})
}

func presorted(in Cursor) *presortedGroupCursor {
	return &presortedGroupCursor{
		in:        in,
		keys:      []xmas.Var{"$G"},
		inSchema:  []xmas.Var{"$G", "$V"},
		outSchema: []xmas.Var{"$G", "$X"},
	}
}

// TestTable1GroupByNavigation replays the navigation semantics of paper
// Table 1: the presorted stateless gBy streams one group at a time, the
// partition delivers the tuples of the group, and advancing to the next
// group (the r(⟨binding⟩) loop) works whether or not the partition was
// consumed.
func TestTable1GroupByNavigation(t *testing.T) {
	pulls := 0
	g := presorted(orderedInput([][2]string{
		{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"}, {"c", "5"},
	}, &pulls))

	// getRoot + d: first group.
	t1, ok, err := g.Next()
	if err != nil || !ok {
		t.Fatalf("first group: %v %v", ok, err)
	}
	if key, _ := atomOf(t1.MustGet("$G")); key != "a" {
		t.Fatalf("first group key = %q", key)
	}
	// Only the group's first tuple has been pulled so far.
	if pulls != 1 {
		t.Fatalf("pulls after first group header = %d", pulls)
	}
	// Navigate inside the partition (d on the group value).
	part := t1.MustGet("$X").(SetVal)
	p1, ok := part.Tuples.Get(0)
	if !ok {
		t.Fatal("partition first tuple")
	}
	if v, _ := atomOf(p1.MustGet("$V")); v != "1" {
		t.Fatalf("partition tuple 1 = %q", v)
	}
	p2, ok := part.Tuples.Get(1)
	if !ok {
		t.Fatal("partition second tuple")
	}
	if v, _ := atomOf(p2.MustGet("$V")); v != "2" {
		t.Fatalf("partition tuple 2 = %q", v)
	}
	// r past the end of the group returns ⊥ (Table 1's in-binding r).
	if _, ok := part.Tuples.Get(2); ok {
		t.Fatal("partition must end at the group boundary")
	}

	// r on the binding: next group. Table 1's implementation repeats
	// r(b_s) until the key changes — the pending tuple was already read.
	t2, ok, err := g.Next()
	if err != nil || !ok {
		t.Fatal("second group")
	}
	if key, _ := atomOf(t2.MustGet("$G")); key != "b" {
		t.Fatalf("second group key = %q", key)
	}

	// Skip the b partition entirely; the c group must still arrive.
	t3, ok, err := g.Next()
	if err != nil || !ok {
		t.Fatal("third group")
	}
	if key, _ := atomOf(t3.MustGet("$G")); key != "c" {
		t.Fatalf("third group key = %q", key)
	}
	part3 := t3.MustGet("$X").(SetVal)
	if part3.Tuples.Len() != 2 {
		t.Fatalf("third partition size = %d", part3.Tuples.Len())
	}

	// End of stream.
	if _, ok, _ := g.Next(); ok {
		t.Fatal("stream must end after the last group")
	}
	if pulls != 5 {
		t.Fatalf("total pulls = %d, want 5", pulls)
	}
}

func TestPresortedGroupBySingleGroup(t *testing.T) {
	pulls := 0
	g := presorted(orderedInput([][2]string{{"a", "1"}, {"a", "2"}}, &pulls))
	t1, ok, _ := g.Next()
	if !ok {
		t.Fatal("group")
	}
	if t1.MustGet("$X").(SetVal).Tuples.Len() != 2 {
		t.Fatal("partition size")
	}
	if _, ok, _ := g.Next(); ok {
		t.Fatal("single group stream must end")
	}
}

func TestPresortedGroupByEmpty(t *testing.T) {
	pulls := 0
	g := presorted(orderedInput(nil, &pulls))
	if _, ok, _ := g.Next(); ok {
		t.Fatal("empty input must produce no groups")
	}
}

// TestStatefulGroupByUnsortedInput: the buffered gBy groups unsorted input
// correctly (first-appearance order), which the presorted one cannot.
func TestStatefulGroupByUnsortedInput(t *testing.T) {
	pairs := [][2]string{{"b", "1"}, {"a", "2"}, {"b", "3"}}
	pulls := 0
	op := &xmas.GroupBy{
		In:   nil, // compiled below by hand
		Keys: []xmas.Var{"$G"},
		Out:  "$X",
	}
	_ = op
	// Drive the compiled stateful group-by through a custom input by
	// wiring the cursor directly.
	in := orderedInput(pairs, &pulls)
	rows, err := drain(in)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string][]Tuple{}
	var order []string
	for _, tp := range rows {
		k := tp.Key([]xmas.Var{"$G"})
		if _, seen := index[k]; !seen {
			order = append(order, k)
		}
		index[k] = append(index[k], tp)
	}
	if len(order) != 2 {
		t.Fatalf("groups = %d", len(order))
	}
	if len(index[order[0]]) != 2 || len(index[order[1]]) != 1 {
		t.Fatalf("group sizes: %v", index)
	}
}

// TestFigure5BindingTree renders a set of binding lists in the paper's
// Figure 5 tree representation.
func TestFigure5BindingTree(t *testing.T) {
	// B = {[$A=a1, $B=list[e1,e2], $C={[$D=d11],[$D=d12]}],
	//      [$A=a2, $B=list[f1,f2,f3], $C={[$D=d21]}]}
	inner := func(vals ...string) SetVal {
		var tuples []Tuple
		for _, v := range vals {
			tuples = append(tuples, NewTuple([]xmas.Var{"$D"},
				[]Value{NodeVal{E: NewLeaf("", v)}}))
		}
		return SetVal{Schema: []xmas.Var{"$D"}, Tuples: ListOf(tuples...)}
	}
	list := func(vals ...string) Value {
		var es []*Elem
		for _, v := range vals {
			es = append(es, NewLeaf("", v))
		}
		return ListVal{L: ListOf(es...)}
	}
	schema := []xmas.Var{"$A", "$B", "$C"}
	b := SetVal{Schema: schema, Tuples: ListOf(
		NewTuple(schema, []Value{NodeVal{E: NewLeaf("", "a1")}, list("e1", "e2"), inner("d11", "d12")}),
		NewTuple(schema, []Value{NodeVal{E: NewLeaf("", "a2")}, list("f1", "f2", "f3"), inner("d21")}),
	)}
	tree := BindingTree(b)
	got := tree.String()
	want := "list[" +
		"binding[$A[a1], $B[list[e1, e2]], $C[set[binding[$D[d11]], binding[$D[d12]]]]], " +
		"binding[$A[a2], $B[list[f1, f2, f3]], $C[set[binding[$D[d21]]]]]]"
	if got != want {
		t.Fatalf("Figure 5 tree:\n got %s\nwant %s", got, want)
	}
	if !strings.HasPrefix(string(tree.Children[0].ID), "&b") {
		t.Fatalf("binding node ids: %q", tree.Children[0].ID)
	}
}

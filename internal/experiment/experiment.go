// Package experiment implements the measurement harnesses for the
// performance claims of the paper (EXPERIMENTS.md, experiments E10-E14).
// The paper's evaluation is qualitative; these harnesses turn each claim
// into numbers — wall time and, more importantly, tuples shipped between
// mediator and sources, the quantity MIX's lazy evaluation and query
// pushdown minimize. cmd/mixbench prints the tables; bench_test.go wraps
// the same code as Go benchmarks.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"mix"
	"mix/internal/engine"
	"mix/internal/qdom"
	"mix/internal/rewrite"
	"mix/internal/workload"
	"mix/internal/xmas"
)

// Table is one experiment's output.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// mediatorOver builds a mediator over a generated customers/orders database
// with the Q1 view registered as rootv.
func mediatorOver(nCustomers, ordersPer int, cfg mix.Config) *mix.Mediator {
	med := mix.NewWith(cfg)
	med.AddRelationalSource(workload.ScaleDB("db1", nCustomers, ordersPer, 42))
	must(med.AliasSource("&root1", "&db1.customer"))
	must(med.AliasSource("&root2", "&db1.orders"))
	mustView(med.DefineView("rootv", workload.Q1))
	return med
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustView(_ *mix.View, err error) {
	if err != nil {
		panic(err)
	}
}

// browse visits the first k CustRec children of a lazy document, descending
// into the customer element and the first OrderInfo of each — the "browse a
// few results and move on" behaviour of paper Section 1.
func browse(doc *mix.Document, k int) int {
	visited := 0
	node := doc.Root().Down()
	for node != nil && visited < k {
		if c := node.Down(); c != nil { // customer element
			c.Down() // its first column
			if oi := c.Right(); oi != nil {
				oi.Down() // the order tuple
			}
		}
		visited++
		node = node.Right()
	}
	return visited
}

// LazyVsEager is experiment E10: time-to-results and tuples shipped as a
// function of how much of the answer the client browses, lazy QDOM vs. the
// conventional full-answer mediator.
func LazyVsEager(sizes []int, ordersPer int, browseKs []int) Table {
	t := Table{
		Title:  "E10 lazy vs eager (Q1 view; browse k of N customers)",
		Note:   "paper claim (§1,§4): demand-driven evaluation fetches only what navigation needs",
		Header: []string{"N", "k", "lazy_shipped", "eager_shipped", "lazy_ms", "eager_ms"},
	}
	for _, n := range sizes {
		for _, k := range browseKs {
			if k > n {
				continue
			}
			// Lazy: open the view, browse k.
			medL := mediatorOver(n, ordersPer, mix.Config{})
			medL.ResetStats()
			start := time.Now()
			docL, err := medL.Open("rootv")
			must(err)
			browse(docL, k)
			lazyDur := time.Since(start)
			docL.Close()
			lazyShipped := medL.Stats().TuplesShipped

			// Eager: materialize everything, then browse k (free).
			medE := mediatorOver(n, ordersPer, mix.Config{})
			medE.ResetStats()
			start = time.Now()
			docE, err := medE.Open("rootv")
			must(err)
			docE.Materialize()
			eagerDur := time.Since(start)
			docE.Close()
			eagerShipped := medE.Stats().TuplesShipped

			t.Rows = append(t.Rows, []string{
				itoa(n), itoa(k),
				i64(lazyShipped), i64(eagerShipped),
				ms(lazyDur), ms(eagerDur),
			})
		}
	}
	return t
}

// Composition is experiment E11: tuples shipped for a selective query over
// the view, naive composition vs. the full rewrite+pushdown pipeline,
// sweeping the selection threshold (order values are uniform in
// [0, 100000), so threshold T keeps ≈(1-T/100000) of orders).
func Composition(sizes []int, thresholds []int64) Table {
	t := Table{
		Title:  "E11 composition: naive vs rewritten+pushed (customers with an order > T)",
		Note:   "paper claim (§6): pushing the combined conditions transfers the minimum amount of data",
		Header: []string{"N", "T", "naive_shipped", "optimized_shipped", "naive_ms", "opt_ms", "results"},
	}
	for _, n := range sizes {
		for _, threshold := range thresholds {
			query := fmt.Sprintf(`
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/orders/value > %d
RETURN $R`, threshold)

			run := func(cfg mix.Config) (int64, time.Duration, int) {
				med := mediatorOver(n, 3, cfg)
				med.ResetStats()
				start := time.Now()
				doc, err := med.Query(query)
				must(err)
				m := doc.Materialize()
				must(doc.Err())
				return med.Stats().TuplesShipped, time.Since(start), len(m.Children)
			}
			naiveShipped, naiveDur, nRes := run(mix.Config{DisableRewrite: true, DisablePushdown: true})
			optShipped, optDur, oRes := run(mix.Config{})
			if nRes != oRes {
				panic(fmt.Sprintf("experiment: result divergence %d vs %d", nRes, oRes))
			}
			t.Rows = append(t.Rows, []string{
				itoa(n), i64(threshold),
				i64(naiveShipped), i64(optShipped),
				ms(naiveDur), ms(optDur), itoa(nRes),
			})
		}
	}
	return t
}

// Decontext is experiment E12: answering an in-place query from a CustRec
// node by decontextualization vs. by materializing the subtree and
// evaluating locally (the strategy the paper rejects).
func Decontext(nCustomers int, ordersPers []int) Table {
	t := Table{
		Title:  "E12 in-place query: decontextualize vs materialize-subtree",
		Note:   "paper claim (§5): conveying the node's identity to the sources beats fetching the subtree",
		Header: []string{"N", "orders/cust", "decon_shipped", "mat_shipped", "decon_ms", "mat_ms"},
	}
	inPlace := `
FOR $O IN document(root)/OrderInfo
WHERE $O/orders/value < 50000
RETURN $O`
	for _, per := range ordersPers {
		navTo := func(med *mix.Mediator) *mix.Node {
			doc, err := med.Open("rootv")
			must(err)
			return doc.Root().Down() // first CustRec
		}

		medD := mediatorOver(nCustomers, per, mix.Config{})
		node := navTo(medD)
		medD.ResetStats()
		start := time.Now()
		docD, err := medD.QueryFrom(node, inPlace)
		must(err)
		docD.Materialize()
		deconDur := time.Since(start)
		deconShipped := medD.Stats().TuplesShipped

		medM := mediatorOver(nCustomers, per, mix.Config{})
		nodeM := navTo(medM)
		medM.ResetStats()
		start = time.Now()
		docM, err := medM.QueryFromMaterialized(nodeM, inPlace)
		must(err)
		docM.Materialize()
		matDur := time.Since(start)
		matShipped := medM.Stats().TuplesShipped

		t.Rows = append(t.Rows, []string{
			itoa(nCustomers), itoa(per),
			i64(deconShipped), i64(matShipped),
			ms(deconDur), ms(matDur),
		})
	}
	return t
}

// GroupBy is experiment E13: the stateless presorted group-by of Table 1 vs
// the buffering stateful one, measured by what reaching the FIRST result
// group costs — in source transfer, in mediator-side operator work (tuples
// produced across the plan), and in latency.
func GroupBy(sizes []int, ordersPer int) Table {
	t := Table{
		Title:  "E13 group-by: presorted (stateless, Table 1) vs stateful (buffered)",
		Note:   "paper claim (§4): with sorted input the stateless gBy streams; otherwise buffers are needed",
		Header: []string{"N", "variant", "shipped_first_group", "mediator_tuples", "ms_first_group"},
	}
	for _, n := range sizes {
		for _, variant := range []string{"presorted", "stateful"} {
			med := mediatorOver(n, ordersPer, mix.Config{})
			view, _ := med.View("rootv")
			plan := view.ExecPlan
			if variant == "stateful" {
				plan = forceStateful(plan)
			}
			prog, err := engine.Compile(plan, med.Catalog())
			must(err)
			med.ResetStats()
			start := time.Now()
			res, metrics := prog.RunWithMetrics()
			doc := qdom.NewDocument(res, nil)
			first := doc.Root().Down()
			if first != nil {
				if c := first.Down(); c != nil {
					c.Right() // first OrderInfo
				}
			}
			dur := time.Since(start)
			t.Rows = append(t.Rows, []string{
				itoa(n), variant,
				i64(med.Stats().TuplesShipped), i64(metrics.Total()), ms(dur),
			})
		}
	}
	return t
}

// forceStateful clones the plan with every group-by downgraded to the
// buffering implementation.
func forceStateful(plan xmas.Op) xmas.Op {
	clone := xmas.Clone(plan)
	var fix func(op xmas.Op) xmas.Op
	fix = func(op xmas.Op) xmas.Op {
		ins := op.Inputs()
		newIns := make([]xmas.Op, len(ins))
		for i, in := range ins {
			newIns[i] = fix(in)
		}
		out := op.WithInputs(newIns...)
		if a, ok := out.(*xmas.Apply); ok {
			a.Plan = fix(a.Plan)
		}
		if gb, ok := out.(*xmas.GroupBy); ok {
			gb.Presorted = false
		}
		return out
	}
	return fix(clone)
}

// Ablation is experiment E14: which optimizer stages buy how much, measured
// on the Figure 12 composition.
func Ablation(nCustomers int) Table {
	t := Table{
		Title:  "E14 optimizer ablation (Figure 12 query over the Q1 view)",
		Note:   "paper §6 bullets: object-construction removal, condition combination, semijoin pushdown",
		Header: []string{"variant", "shipped", "mediator_tuples", "ms"},
	}
	query := `
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/orders/value > 90000
RETURN $R`
	variants := []struct {
		name string
		cfg  mix.Config
	}{
		{"full", mix.Config{}},
		{"no-semijoin-push", mix.Config{RewriteOptions: rewrite.Options{NoSemijoinPush: true}}},
		{"no-dead-elim", mix.Config{RewriteOptions: rewrite.Options{NoDeadElim: true}}},
		{"no-sql-pushdown", mix.Config{DisablePushdown: true}},
		{"no-rewrite", mix.Config{DisableRewrite: true, DisablePushdown: true}},
	}
	var baseline int
	for _, v := range variants {
		med := mediatorOver(nCustomers, 3, v.cfg)
		med.ResetStats()
		start := time.Now()
		doc, metrics, err := med.QueryWithMetrics(query)
		must(err)
		m := doc.Materialize()
		must(doc.Err())
		dur := time.Since(start)
		if v.name == "full" {
			baseline = len(m.Children)
		} else if len(m.Children) != baseline {
			panic(fmt.Sprintf("experiment: ablation %s diverged: %d vs %d",
				v.name, len(m.Children), baseline))
		}
		t.Rows = append(t.Rows, []string{
			v.name, i64(med.Stats().TuplesShipped), i64(metrics.Total()), ms(dur),
		})
	}
	return t
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func i64(v int64) string { return fmt.Sprintf("%d", v) }

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

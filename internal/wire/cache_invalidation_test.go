package wire_test

import (
	"fmt"
	"testing"

	"mix"
	"mix/internal/relstore"
	"mix/internal/workload"
)

// TestCacheInvalidationMatrix is the end-to-end invalidation contract: for
// every combination of the three cache layers (mediator plan cache, mediator
// source-result cache, client node cache) a row inserted mid-session is
// observed by the very next walk — and again after a faultnet-induced
// redial. No setting may ever serve stale data; caching changes the work,
// never the answer.
func TestCacheInvalidationMatrix(t *testing.T) {
	for _, plan := range []int{0, 64} {
		for _, src := range []int{0, 64} {
			for _, node := range []int{0, 1024} {
				plan, src, node := plan, src, node
				name := fmt.Sprintf("plan=%d/source=%d/node=%d", plan, src, node)
				t.Run(name, func(t *testing.T) {
					db := workload.PaperDB()
					med := mix.NewWith(mix.Config{PlanCache: plan, SourceCache: src})
					med.AddRelationalSource(db)
					if _, err := med.DefineView("custv", `
FOR $C IN document(&db1.customer)/customer
RETURN <C> $C </C>`); err != nil {
						t.Fatal(err)
					}
					e := newEndpoint(med)
					cfg := fastCfg()
					cfg.BatchSize = 8
					cfg.NodeCache = node
					c := dialEndpoint(t, e, cfg)

					walk := func(wantRows int, when string) {
						t.Helper()
						got := walkChildren(t, c, "custv")
						if len(got) != wantRows {
							t.Fatalf("%s: walk saw %d customers, want %d (stale cache?)",
								when, len(got), wantRows)
						}
					}

					walk(2, "initial")
					walk(2, "warm") // populate/exercise whatever caches are on

					db.MustInsert("customer",
						relstore.Str("GHI678"), relstore.Str("GHILtd."), relstore.Str("Chicago"))
					walk(3, "post-mutation")

					// Mutate again and sever the connection: the redial path
					// must also observe fresh data.
					db.MustInsert("customer",
						relstore.Str("JKL901"), relstore.Str("JKLGmbH"), relstore.Str("Berlin"))
					e.killConn()
					walk(4, "post-mutation+redial")
					if c.Redials() == 0 {
						t.Fatal("the killed connection never forced a redial")
					}
				})
			}
		}
	}
}

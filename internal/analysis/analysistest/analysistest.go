// Package analysistest runs analyzers over a testdata package and checks
// their diagnostics against `// want "regexp"` comments — the same contract
// as golang.org/x/tools/go/analysis/analysistest, on the module's
// dependency-free driver. Each `// want` comment expects one diagnostic on
// its line whose message matches the quoted regular expression; a comment
// may carry several quoted patterns for several expected diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"

	"mix/internal/analysis"
)

// TB is the slice of testing.TB the runner needs. Production tests pass
// *testing.T; the package's own tests inject a recorder to pin the runner's
// failure behavior (a degraded load must fail the run, never silently pass).
type TB interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
	Fatal(args ...interface{})
}

// Run loads dir as one package (test files included) and checks a's
// diagnostics against the `// want` expectations in its sources.
func Run(t TB, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunAnalyzers(t, dir, []*analysis.Analyzer{a})
}

// RunAnalyzers loads dir once and checks the combined diagnostics of all
// analyzers against the `// want` expectations — the multi-analyzer contract
// mixvet runs under, where one line may carry findings from several
// analyzers and a waiver suppresses all of them.
func RunAnalyzers(t TB, dir string, as []*analysis.Analyzer) {
	t.Helper()
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	units, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		runUnit(t, u, as)
	}
}

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func runUnit(t TB, u *analysis.Package, as []*analysis.Analyzer) {
	t.Helper()
	for _, err := range u.Degraded {
		t.Errorf("%s: load degraded: %v", u.ImportPath, err)
	}
	var wants []*expectation
	for _, f := range u.Files {
		wants = append(wants, parseWants(t, u, f)...)
	}

	var diags []analysis.Diagnostic
	for _, a := range as {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Types,
			TypesInfo: u.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: %s: %v", u.ImportPath, a.Name, err)
		}
	}

	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func parseWants(t TB, u *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := u.Fset.Position(c.Pos())
			for _, raw := range splitQuoted(t, pos.String(), text) {
				rx, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted strings of a want comment.
func splitQuoted(t TB, at, s string) []string {
	t.Helper()
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			break
		}
		rest := s[i:]
		val, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment near %q: %v", at, rest, err)
		}
		unq, err := strconv.Unquote(val)
		if err != nil {
			t.Fatalf(fmt.Sprintf("%s: %v", at, err))
		}
		out = append(out, unq)
		s = rest[len(val):]
	}
	return out
}

package translate

import (
	"strings"
	"testing"

	"mix/internal/workload"
	"mix/internal/xmas"
	"mix/internal/xquery"
)

// TestFigure6Plan is the golden test for paper Figure 6: the Figure 3 query
// translates into exactly the plan shape the paper draws — getD/mkSrc
// chains joined on the WHERE temporaries, a per-tuple crElt for OrderInfo,
// a group-by on $C with an apply collecting the OrderInfo list, a cat
// prepending the customer element, the CustRec crElt, and the final tD.
func TestFigure6Plan(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	got := xmas.Format(tr.Plan)
	want := strings.TrimSpace(`
tD($V2, rootv)
  crElt(CustRec, g($C), $W -> $V2)
    cat(list($C), $Z -> $W)
      apply(p, $X -> $Z)
        p:
          tD($V)
            nSrc($X)
        gBy([$C] -> $X)
          crElt(OrderInfo, f($O), list($O) -> $V)
            join($1 = $2)
              getD($C.customer.id -> $1)
                getD($doc.customer -> $C)
                  mkSrc(&root1, $doc)
              getD($O.orders.cid -> $2)
                getD($doc2.orders -> $O)
                  mkSrc(&root2, $doc2)`)
	if got != want {
		t.Fatalf("Figure 6 plan mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if err := xmas.Validate(tr.Plan); err != nil {
		t.Fatal(err)
	}
}

func TestTagsRecorded(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	for v, want := range map[xmas.Var]string{
		"$C":  "customer",
		"$O":  "orders",
		"$V":  "OrderInfo",
		"$V2": "CustRec",
		"$1":  "id",
		"$2":  "cid",
	} {
		if got := tr.Tags[v]; got != want {
			t.Errorf("tag(%s) = %q, want %q", v, got, want)
		}
	}
}

func TestSelectTranslation(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`
FOR $C IN document(&root1)/customer
WHERE $C/name < "B"
RETURN $C`), "res")
	got := xmas.Format(tr.Plan)
	want := strings.TrimSpace(`
tD($C, res)
  select($1 < "B")
    getD($C.customer.name -> $1)
      getD($doc.customer -> $C)
        mkSrc(&root1, $doc)`)
	if got != want {
		t.Fatalf("select plan:\n%s\nwant\n%s", got, want)
	}
}

func TestVariablePathBinding(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`
FOR $R IN document(rootv)/CustRec
    $S IN $R/OrderInfo
WHERE $S/orders/value > 20000
RETURN $R`), "res")
	got := xmas.Format(tr.Plan)
	// $S's getD must prefix $R's tag (paths include the start label).
	if !strings.Contains(got, "getD($R.CustRec.OrderInfo -> $S)") {
		t.Fatalf("variable binding path:\n%s", got)
	}
	if !strings.Contains(got, "getD($S.OrderInfo.orders.value -> $1)") {
		t.Fatalf("WHERE operand path:\n%s", got)
	}
}

func TestCartesianProductFallback(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`
FOR $A IN document(&d1)/a
    $B IN document(&d2)/b
RETURN <pair> $A $B </pair>`), "res")
	found := false
	xmas.Walk(tr.Plan, func(op xmas.Op) bool {
		if j, ok := op.(*xmas.Join); ok && j.Cond == nil {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("unjoined FOR clauses must combine via cartesian product:\n%s", xmas.Format(tr.Plan))
	}
}

func TestVarVarSelectInOneExpr(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`
FOR $O IN document(&d)/orders
WHERE $O/value = $O/weight
RETURN $O`), "res")
	got := xmas.Format(tr.Plan)
	if !strings.Contains(got, "select($1 = $2)") {
		t.Fatalf("same-expression condition should select, not join:\n%s", got)
	}
}

func TestGroupedReturnWithoutVariation(t *testing.T) {
	// Grouping where every content var is a key: no gBy is needed; merge
	// happens by skolem id (DESIGN.md documents this).
	tr := MustTranslate(xquery.MustParse(`
FOR $C IN document(&d)/customer
    $O IN $C/order
RETURN <rec> $C </rec> {$C}`), "res")
	got := xmas.Format(tr.Plan)
	if strings.Contains(got, "gBy") {
		t.Fatalf("no grouping expected:\n%s", got)
	}
	if !strings.Contains(got, "crElt(rec, f($C), list($C) -> $V)") {
		t.Fatalf("skolemized per-tuple crElt expected:\n%s", got)
	}
}

func TestNestedQueryTranslation(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`
FOR $C IN document(&d)/customer
RETURN
  <rec>
    $C
    FOR $O IN $C/order WHERE $O/value > 100 RETURN $O
  </rec> {$C}`), "res")
	if err := xmas.Validate(tr.Plan); err != nil {
		t.Fatal(err)
	}
	got := xmas.Format(tr.Plan)
	for _, want := range []string{"apply(p", "nSrc(", "gBy(["} {
		if !strings.Contains(got, want) {
			t.Fatalf("nested query plan missing %q:\n%s", want, got)
		}
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := []string{
		`FOR $S IN $R/x RETURN $S`,                          // unbound range var
		`FOR $C IN document(&d)/c WHERE $Z/v = 1 RETURN $C`, // unbound WHERE var
		`FOR $C IN document(&d)/c RETURN $Z`,                // unbound RETURN var
		`FOR $C IN document(&d)/c WHERE 1 = 2 RETURN $C`,    // constant condition
		`FOR $C IN document(&d)/c RETURN <r> $Z </r>`,       // unbound in ctor
		`FOR $C IN document(&d)/c RETURN <r> $C </r> {$Z}`,  // unbound group-by
	}
	for _, src := range cases {
		if _, err := Translate(xquery.MustParse(src), "res"); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestResultRootVar(t *testing.T) {
	tr := MustTranslate(xquery.MustParse(`FOR $C IN document(&d)/c RETURN $C`), "res")
	if tr.RootVar != "$C" {
		t.Fatalf("RootVar = %s", tr.RootVar)
	}
	td := tr.Plan.(*xmas.TD)
	if td.RootID != "res" || td.V != "$C" {
		t.Fatalf("tD = %+v", td)
	}
}

func TestFreshVarDeterminism(t *testing.T) {
	a := xmas.Format(MustTranslate(xquery.MustParse(workload.Q1), "v").Plan)
	b := xmas.Format(MustTranslate(xquery.MustParse(workload.Q1), "v").Plan)
	if a != b {
		t.Fatal("translation must be deterministic")
	}
}

// Package goroutinelife is the compile-time generalization of the testleak
// runtime check: every goroutine launched in the engine and wire layers must
// have a reachable way to stop. A goroutine whose body is bounded (no
// unconditional loop, no range over a never-closed channel) stops by
// construction. An unbounded one — an exchange producer, a session sweep
// clock, a drain pump — must observe cancellation: a receive or select on a
// channel that some code in the package close()s, or <-ctx.Done(). Anything
// else is a leak waiting for the sharded fan-out to multiply it.
//
// Channel identity flows through an alias analysis: struct fields, locals
// and parameters are unified across assignments and static in-package calls,
// so the idiom of capturing a local, publishing it to a field, and closing
// through another local (startClock/Shutdown) resolves to one channel.
// Cancellation may also be reached transitively through in-package callees.
// Packages other than engine/wire and _test.go files are out of scope.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mix/internal/analysis"
)

// Analyzer is the goroutinelife check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc:  "every engine/wire goroutine needs a cancellation path: a closed channel, ctx.Done, or a bounded body",
	Run:  run,
}

type checker struct {
	pass   *analysis.Pass
	uf     map[string]string
	objIDs map[types.Object]int
	closed map[string]bool // union-find roots of close()d channels
	sums   map[*types.Func]bool
	decls  map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) (interface{}, error) {
	if base := strings.TrimSuffix(pass.Pkg.Name(), "_test"); base != "engine" && base != "wire" && base != "shard" {
		return nil, nil
	}
	c := &checker{
		pass:   pass,
		uf:     map[string]string{},
		objIDs: map[types.Object]int{},
		closed: map[string]bool{},
		sums:   map[*types.Func]bool{},
		decls:  map[*types.Func]*ast.FuncDecl{},
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.IsTestFile(pass, fd.Pos()) {
				continue
			}
			decls = append(decls, fd)
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}

	// Pass 1: unify channel aliases across assignments and static calls,
	// and collect close() targets.
	var closeArgs []ast.Expr
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						c.unify(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						c.unify(name, n.Values[i])
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					closeArgs = append(closeArgs, n.Args[0])
					return true
				}
				if f := analysis.StaticCallee(pass, n); f != nil && c.decls[f] != nil {
					sig := f.Type().(*types.Signature)
					for i, arg := range n.Args {
						if i >= sig.Params().Len() {
							break
						}
						if a, ok := c.canon(arg); ok {
							if p, ok := c.objCanon(sig.Params().At(i)); ok {
								c.union(a, p)
							}
						}
					}
				}
			}
			return true
		})
	}
	for _, arg := range closeArgs {
		if id, ok := c.canon(arg); ok {
			c.closed[c.find(id)] = true
		}
	}

	// Pass 2: per-function cancellation summaries, to a fixpoint so a
	// goroutine body may reach its stop check through helpers.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || c.sums[obj] {
				continue
			}
			if c.hasCancel(fd.Body) {
				c.sums[obj] = true
				changed = true
			}
		}
	}

	// Pass 3: judge every go statement.
	ignored := analysis.IgnoredLines(pass)
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := c.goBody(g)
			if body == nil || !c.unbounded(body) || c.hasCancel(body) {
				return true
			}
			if !ignored[pass.Position(g.Pos()).Line] {
				pass.Reportf(g.Pos(), "goroutine runs an unbounded loop with no reachable cancellation (closed channel, ctx.Done, or Close-registered stop): it leaks")
			}
			return true
		})
	}
	return nil, nil
}

// goBody resolves the body a go statement runs: the literal's body, or the
// declaration of a statically-resolved in-package callee. External callees
// are out of scope — their lifecycle is theirs to enforce.
func (c *checker) goBody(g *ast.GoStmt) *ast.BlockStmt {
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return fl.Body
	}
	if f := analysis.StaticCallee(c.pass, g.Call); f != nil {
		if fd := c.decls[f]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// unbounded reports whether body contains a loop that can run forever: a
// `for {}`/`for cond {}` or a range over a channel nothing closes. Counted
// and range-over-collection loops are bounded; nested goroutines and
// closures answer for themselves.
func (c *checker) unbounded(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Init == nil && n.Post == nil {
				found = true
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !c.isClosed(n.X) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// hasCancel reports whether body can observe cancellation: a receive (or
// select case, or range) over a channel the package closes, <-ctx.Done(),
// or a call into an in-package function that can. Nested goroutines answer
// for themselves; closures invoked here or registered (sync.Once) count for
// this body.
func (c *checker) hasCancel(body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if has {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if call, ok := n.X.(*ast.CallExpr); ok && analysis.CalleeName(call) == "Done" {
				has = true
				return false
			}
			if c.isClosed(n.X) {
				has = true
				return false
			}
		case *ast.RangeStmt:
			if c.isClosed(n.X) {
				has = true
				return false
			}
		case *ast.CallExpr:
			if f := analysis.StaticCallee(c.pass, n); f != nil && c.sums[f] {
				has = true
				return false
			}
		}
		return true
	})
	return has
}

func (c *checker) isClosed(e ast.Expr) bool {
	id, ok := c.canon(e)
	return ok && c.closed[c.find(id)]
}

// canon maps a channel-typed expression to a stable alias-analysis node:
// struct fields by owning type and name, locals and parameters by object.
func (c *checker) canon(e ast.Expr) (string, bool) {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "", false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return "", false
	}
	if key, ok := analysis.FieldKey(c.pass, e); ok {
		return "f:" + key, true
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
			return c.objCanon(obj)
		}
	}
	return "", false
}

func (c *checker) objCanon(obj types.Object) (string, bool) {
	if obj == nil {
		return "", false
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return "", false
	}
	id, ok := c.objIDs[obj]
	if !ok {
		id = len(c.objIDs)
		c.objIDs[obj] = id
	}
	return "o:" + itoa(id), true
}

func (c *checker) unify(a, b ast.Expr) {
	ca, ok := c.canon(a)
	if !ok {
		return
	}
	cb, ok := c.canon(b)
	if !ok {
		return
	}
	c.union(ca, cb)
}

func (c *checker) find(x string) string {
	root := x
	for {
		p, ok := c.uf[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	for x != root {
		next := c.uf[x]
		c.uf[x] = root
		x = next
	}
	return root
}

func (c *checker) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra != rb {
		c.uf[ra] = rb
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Package lockorder builds a per-package static lock-acquisition graph over
// sync.Mutex/sync.RWMutex fields and package-level mutex variables, then
// reports cycles: two code paths that acquire the same pair of locks in
// opposite orders can deadlock the moment they run concurrently. This is the
// prerequisite check for layering MVCC onto relstore and sharding onto wire —
// both add locks, and a lock hierarchy is only a hierarchy if something
// machine-checks it.
//
// The analysis is lexical and interprocedural within the package: each
// function body is walked with a simulated held-set (branch bodies get copies
// so a lock taken inside an if does not leak to the join point; `defer
// x.Unlock()` leaves the lock held for the rest of the body, which is what it
// means), and every static call adds edges from the held locks to everything
// the callee can acquire, computed as a fixpoint over per-function summaries.
// Goroutine bodies launched with `go` start with an empty held-set — they do
// not inherit the launcher's locks. Lock identity is the owning struct type
// plus field name ("Client.mu"), so the same field reached through different
// receivers is one node; local mutex variables and mutexes reached through
// interfaces are out of scope. Functions in _test.go files are skipped:
// fixtures lock in ad-hoc orders under no concurrency.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"mix/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "sync.Mutex/RWMutex fields must be acquired in one global order; opposite-order pairs deadlock",
	Run:  run,
}

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

type walker struct {
	pass *analysis.Pass
	sums map[*types.Func]map[string]bool
	// edges[from][to] = first acquire site observed taking `to` while
	// holding `from`.
	edges map[string]map[string]token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	w := &walker{
		pass:  pass,
		sums:  map[*types.Func]map[string]bool{},
		edges: map[string]map[string]token.Pos{},
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.IsTestFile(pass, fd.Pos()) {
				continue
			}
			decls = append(decls, fd)
		}
	}

	// Per-function acquire summaries, to a fixpoint so chains of in-package
	// calls are transitively visible. Goroutines launched by a callee run
	// concurrently with it, so their acquisitions are not ordered after the
	// caller's held locks and stay out of the summary.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cur := w.sums[obj]
			if cur == nil {
				cur = map[string]bool{}
				w.sums[obj] = cur
			}
			before := len(cur)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, isGo := n.(*ast.GoStmt); isGo {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, op := w.lockOp(call); op == opAcquire {
					cur[id] = true
				} else if op == opNone {
					if callee := analysis.StaticCallee(pass, call); callee != nil {
						for l := range w.sums[callee] {
							cur[l] = true
						}
					}
				}
				return true
			})
			if len(cur) != before {
				changed = true
			}
		}
	}

	for _, fd := range decls {
		w.block(fd.Body.List, map[string]bool{})
	}

	w.reportCycles()
	return nil, nil
}

// lockOp classifies a call as a mutex acquire/release on an identifiable
// lock. Only direct sync.Mutex/sync.RWMutex method calls on struct fields or
// package-level variables qualify.
func (w *walker) lockOp(call *ast.CallExpr) (string, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	f := analysis.StaticCallee(w.pass, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", opNone
	}
	var op lockOp
	switch f.Name() {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", opNone
	}
	id, ok := analysis.FieldKey(w.pass, sel.X)
	if !ok {
		return "", opNone
	}
	return id, op
}

func copyHeld(h map[string]bool) map[string]bool {
	out := make(map[string]bool, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func (w *walker) addEdge(from, to string, pos token.Pos) {
	if from == to {
		// Reentrant self-locking is a different bug class (and parent/child
		// instances of one type legitimately nest); the order graph only
		// tracks distinct lock identities.
		return
	}
	m := w.edges[from]
	if m == nil {
		m = map[string]token.Pos{}
		w.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

func (w *walker) block(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.block(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := copyHeld(held)
		w.block(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.stmt(c, copyHeld(held))
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, held)
		}
		w.block(s.Body, held)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm, held)
		}
		w.block(s.Body, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, map[string]bool{})
		}
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.DeferStmt:
		w.deferred(s.Call, held)
	}
}

// deferred models `defer f(...)`. A deferred unlock keeps the lock in the
// held-set — that is precisely the point of the idiom: the lock is held for
// the rest of the body. A deferred closure or call runs at return time, so
// its acquisitions happen under whatever is still held here; walking it with
// a copy of the current held-set is the closest lexical approximation.
func (w *walker) deferred(call *ast.CallExpr, held map[string]bool) {
	if _, op := w.lockOp(call); op == opRelease || op == opAcquire {
		return
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		w.block(fl.Body.List, copyHeld(held))
		return
	}
	w.call(call, held)
	for _, arg := range call.Args {
		w.expr(arg, held)
	}
}

func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure not invoked here runs later, under unknown locks;
			// walk it as its own root.
			w.block(n.Body.List, map[string]bool{})
			return false
		case *ast.CallExpr:
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs right here, under the
				// current held-set.
				w.block(fl.Body.List, held)
				for _, arg := range n.Args {
					w.expr(arg, held)
				}
				return false
			}
			w.call(n, held)
			return true
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr, held map[string]bool) {
	if id, op := w.lockOp(call); op == opAcquire {
		for h := range held {
			w.addEdge(h, id, call.Lparen)
		}
		held[id] = true
		return
	} else if op == opRelease {
		delete(held, id)
		return
	}
	if callee := analysis.StaticCallee(w.pass, call); callee != nil {
		for l := range w.sums[callee] {
			for h := range held {
				w.addEdge(h, l, call.Lparen)
			}
		}
	}
}

// reportCycles finds strongly connected components of the acquisition graph
// and reports every edge inside a multi-node component — each one is a
// witness of an order that some other path inverts.
func (w *walker) reportCycles() {
	var nodes []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range w.edges {
		add(from)
		for to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	comp := tarjan(nodes, w.edges)
	ignored := analysis.IgnoredLines(w.pass)
	for _, from := range nodes {
		tos := make([]string, 0, len(w.edges[from]))
		for to := range w.edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if comp[from] != comp[to] {
				continue
			}
			pos := w.edges[from][to]
			if ignored[w.pass.Position(pos).Line] {
				continue
			}
			if rev, ok := w.edges[to][from]; ok {
				p := w.pass.Position(rev)
				w.pass.Reportf(pos, "acquires %s while holding %s, but %s is acquired while holding %s at %s:%d (lock-order cycle)",
					to, from, from, to, filepath.Base(p.Filename), p.Line)
			} else {
				w.pass.Reportf(pos, "acquires %s while holding %s, completing a lock-order cycle", to, from)
			}
		}
	}
}

// tarjan assigns each node a strongly-connected-component id.
func tarjan(nodes []string, edges map[string]map[string]token.Pos) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		var succ []string
		for to := range edges[v] {
			succ = append(succ, to)
		}
		sort.Strings(succ)
		for _, to := range succ {
			if _, ok := index[to]; !ok {
				strong(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}

		if low[v] == index[v] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp[top] = ncomp
				if top == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comp
}

// Corpus that parses but does not type-check: the runner must surface the
// degraded load as a test failure instead of analyzing partial type info.
package broken

func f() int {
	return "not an int"
}

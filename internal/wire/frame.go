package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame is the default bound on one protocol frame (a request or
// response line). The old implementation capped frames at bufio.Scanner's
// 1 MiB and silently killed the session beyond it; frames are now read
// length-aware up to this limit and an oversized frame yields a typed
// *FrameTooLargeError while the session keeps running.
const DefaultMaxFrame = 16 << 20

// frameBufSize is the chunk size frames are assembled from.
const frameBufSize = 64 << 10

// ErrFrameTooLarge is the sentinel matched by errors.Is for oversized
// frames; the concrete error is *FrameTooLargeError, which carries the
// limit.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// FrameTooLargeError reports a frame that exceeded the configured limit.
// The oversized line is consumed and discarded, so framing stays intact and
// the connection remains usable.
type FrameTooLargeError struct {
	// Limit is the frame bound in bytes that was exceeded.
	Limit int
}

func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("wire: frame exceeds %d-byte limit", e.Limit)
}

// Is makes errors.Is(err, ErrFrameTooLarge) true.
func (e *FrameTooLargeError) Is(target error) bool { return target == ErrFrameTooLarge }

// readFrame reads one newline-delimited frame of at most max bytes (not
// counting the newline). On an oversized frame it drains the remainder of
// the line — resynchronizing the stream — and returns *FrameTooLargeError.
func readFrame(r *bufio.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		if len(buf)+len(chunk) > max+1 { // +1: the trailing newline is free
			for err == bufio.ErrBufferFull { // drain to end of line
				_, err = r.ReadSlice('\n')
			}
			if err != nil {
				return nil, err
			}
			return nil, &FrameTooLargeError{Limit: max}
		}
		buf = append(buf, chunk...)
		switch err {
		case nil:
			return buf[:len(buf)-1], nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// Package shard is the coordinator layer for sharded virtual views: a
// partitioning spec assigns every top-level child of a view to one of N
// member mediators, and a coordinator Doc fans scans out across the members
// over the existing wire machinery — concurrent cursor opens, batched
// windows, the binary codec — merging the member streams back into one.
// Merging preserves global document order when the plan can observe it
// (xmas.OrderDemand), and decontextualized point queries are routed only to
// the members whose partition can match.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"mix/internal/xtree"
)

// Mode selects how a Spec maps partition keys to shards.
type Mode int

const (
	// ModeHash assigns a key to shard fnv32a(key) mod N.
	ModeHash Mode = iota
	// ModeRange assigns a key to the first bound it sorts below; keys at or
	// above every bound land on the last shard.
	ModeRange
)

func (m Mode) String() string {
	if m == ModeRange {
		return "range"
	}
	return "hash"
}

// Spec describes how a view's top-level children are partitioned across
// shards. The partition key of a child is its object id when KeyPath is
// nil, otherwise the atomized value reached by KeyPath — a downward label
// path starting at the child's own label (the same shape the engine's
// getD paths have).
//
// A non-nil KeyPath must be single-valued: at most one element per child
// may match it. Multi-valued key paths would let a child satisfy a pushed
// key constraint through a value other than its partition key, making
// pruning unsound. Wrapper views keyed on a key column satisfy this by
// construction.
type Spec struct {
	Mode    Mode
	N       int      // shard count (ModeHash); ignored for ModeRange
	Bounds  []string // ModeRange: ascending upper-exclusive bounds; len+1 shards
	KeyPath []string // nil: partition on the child's object id
}

// Shards returns the number of shards the spec addresses.
func (s Spec) Shards() int {
	if s.Mode == ModeRange {
		return len(s.Bounds) + 1
	}
	return s.N
}

// Validate checks the spec is well-formed.
func (s Spec) Validate() error {
	switch s.Mode {
	case ModeHash:
		if s.N < 1 {
			return fmt.Errorf("shard: hash spec needs N >= 1, got %d", s.N)
		}
	case ModeRange:
		if len(s.Bounds) == 0 {
			return fmt.Errorf("shard: range spec needs at least one bound")
		}
		for i, b := range s.Bounds {
			if b == "" {
				return fmt.Errorf("shard: range bounds must be non-empty")
			}
			if i > 0 && s.Bounds[i-1] >= b {
				return fmt.Errorf("shard: range bounds must ascend, %q >= %q", s.Bounds[i-1], b)
			}
		}
	default:
		return fmt.Errorf("shard: unknown mode %d", s.Mode)
	}
	for _, step := range s.KeyPath {
		if step == "" || step == "*" || step == "%" {
			return fmt.Errorf("shard: key path steps must be concrete labels")
		}
	}
	return nil
}

// ShardOf maps a partition key to its shard index. Keys are normalized so
// that atoms the engine's comparisons treat as equal land on one shard.
func (s Spec) ShardOf(key string) int {
	key = NormalizeKey(key)
	if s.Mode == ModeRange {
		return sort.Search(len(s.Bounds), func(i int) bool { return key < s.Bounds[i] })
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(s.N))
}

// NormalizeKey canonicalizes an atom the way the engine's hash joins do:
// numerically equal atoms map to one key, everything else is taken
// verbatim.
func NormalizeKey(key string) string {
	if f, err := strconv.ParseFloat(key, 64); err == nil {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return key
}

// String renders the spec in the form ParseSpec accepts.
func (s Spec) String() string {
	var b strings.Builder
	if s.Mode == ModeRange {
		b.WriteString("range:")
		b.WriteString(strings.Join(s.Bounds, ","))
	} else {
		fmt.Fprintf(&b, "hash:%d", s.N)
	}
	if len(s.KeyPath) > 0 {
		b.WriteString("@")
		b.WriteString(strings.Join(s.KeyPath, "."))
	}
	return b.String()
}

// ParseSpec parses a shard spec of the form "hash:N" or
// "range:b1,b2,..." with an optional "@label.label..." key-path suffix,
// e.g. "hash:3@CustRec.customer.id".
func ParseSpec(text string) (Spec, error) {
	var s Spec
	body := text
	if at := strings.IndexByte(text, '@'); at >= 0 {
		body = text[:at]
		s.KeyPath = strings.Split(text[at+1:], ".")
	}
	mode, arg, ok := strings.Cut(body, ":")
	if !ok {
		return Spec{}, fmt.Errorf("shard: spec %q: want mode:args", text)
	}
	switch mode {
	case "hash":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return Spec{}, fmt.Errorf("shard: spec %q: bad shard count: %v", text, err)
		}
		s.Mode, s.N = ModeHash, n
	case "range":
		s.Mode = ModeRange
		s.Bounds = strings.Split(arg, ",")
	default:
		return Spec{}, fmt.Errorf("shard: spec %q: unknown mode %q", text, mode)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// KeyOf extracts a top-level child's partition key under keyPath: nil means
// the child's object id; otherwise the first element (in document order)
// reached by walking keyPath from the child — whose first step must match
// the child's own label — atomized the way the engine compares values
// (atom, falling back to object id). A child the path misses keys as "".
func KeyOf(n *xtree.Node, keyPath []string) string {
	if len(keyPath) == 0 {
		return string(n.ID)
	}
	if m := firstAtPath(n, keyPath); m != nil {
		if a, ok := m.Atom(); ok {
			return a
		}
		return string(m.ID)
	}
	return ""
}

// firstAtPath returns the first element, in document order, reachable from
// n by a downward walk spelling path (n's own label is step 0).
func firstAtPath(n *xtree.Node, path []string) *xtree.Node {
	if n == nil || len(path) == 0 || n.Label != path[0] {
		return nil
	}
	if len(path) == 1 {
		return n
	}
	var walk func(e *xtree.Node, idx int) *xtree.Node
	walk = func(e *xtree.Node, idx int) *xtree.Node {
		if idx == len(path)-1 {
			return e
		}
		for _, kid := range e.Children {
			if kid.Label == path[idx+1] {
				if m := walk(kid, idx+1); m != nil {
					return m
				}
			}
		}
		return nil
	}
	return walk(n, 0)
}

// federation integrates three kinds of sources in one mediator — a
// relational database, a parsed XML file, and ANOTHER MIX mediator (the
// paper notes a MIX mediator can serve as a source to another MIX
// mediator) — and runs one query spanning them.
package main

import (
	"fmt"

	"mix"
	"mix/internal/workload"
)

const suppliersXML = `
<list>
  <supplier><sid>S1</sid><region>NewYork</region><rating>gold</rating></supplier>
  <supplier><sid>S2</sid><region>LosAngeles</region><rating>silver</rating></supplier>
  <supplier><sid>S3</sid><region>NewYork</region><rating>bronze</rating></supplier>
</list>`

func main() {
	// Lower mediator: exports the customers/orders view over a relational
	// source (as in the paper's running example).
	lower := mix.New()
	lower.AddRelationalSource(workload.PaperDB())
	must(lower.AliasSource("&root1", "&db1.customer"))
	must(lower.AliasSource("&root2", "&db1.orders"))
	if _, err := lower.DefineView("rootv", workload.Q1); err != nil {
		panic(err)
	}
	lowerDoc, err := lower.Open("rootv")
	must(err)

	// Upper mediator: an XML file source plus the lower mediator's virtual
	// view as a navigable source.
	upper := mix.New()
	must(upper.AddXMLSource("&suppliers", suppliersXML))
	upper.AddMediatorSource("&custrecs", lowerDoc)

	// One query spanning the federation: pair every customer record with
	// the suppliers in its city.
	doc, err := upper.Query(`
FOR $R IN document(&custrecs)/CustRec
    $S IN document(&suppliers)/supplier
WHERE $R/customer/addr = $S/region
RETURN
  <Match>
    $R
    $S
  </Match> {$R, $S}`)
	must(err)

	fmt.Println("customers paired with suppliers in their city:")
	for m := doc.Root().Down(); m != nil; m = m.Right() {
		t := m.Materialize()
		fmt.Printf("  %s  --  supplier %s (%s, %s)\n",
			text(t, "name"), text(t, "sid"), text(t, "region"), text(t, "rating"))
	}
	must(doc.Err())

	// The lower mediator's relational source was only asked for what the
	// upper query's navigation demanded.
	s := lower.Stats()
	fmt.Printf("\nlower mediator's source: %d queries, %d tuples shipped\n",
		s.QueriesReceived, s.TuplesShipped)
}

func text(t *mix.Tree, label string) string {
	n := t.Find(label)
	if n == nil || len(n.Children) == 0 {
		return "?"
	}
	return n.Children[0].Label
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

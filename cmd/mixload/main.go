// Command mixload drives many concurrent wire sessions against one mediator
// server and reports client-observed latency plus the server's session
// counters — the load harness behind BENCH_load.json and EXPERIMENTS.md E18.
//
//	mixload -sessions 10000 -max-sessions 2500 -session-idle 100ms
//	mixload -sessions 200 -max-sessions 50 -check        # CI smoke
//	mixload -addr 127.0.0.1:7713 -sessions 500           # against mixserve
//
// With no -addr, mixload runs server and clients in one process over
// net.Pipe (no file descriptors, no kernel TCP state), which is what lets a
// single harness sustain tens of thousands of genuinely concurrent sessions;
// the session limits (-max-sessions, -session-idle, -session-mem,
// -session-optime) then apply to the in-process server. Setting limits below
// the offered load is the point of the exercise: sessions turned away get
// typed busy responses and return with jittered backoff, evicted sessions
// resume by token, and the harness reports how many sessions experienced
// disruption yet still completed their walk — the graceful-degradation
// number the admission-control design is accountable to.
//
// Each session opens the demo view (every fourth runs the full query
// instead: a mixed query/navigate population), walks -walk siblings reading
// labels and values with up to -think of jittered think time between steps,
// releases its nodes, and disconnects. Latencies are split into "open" (the
// session's first op — includes admission waits, busy backoff and redials)
// and "nav" (steady-state navigation steps).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mix"
	"mix/internal/wire"
	"mix/internal/workload"
)

func main() {
	var (
		sessions = flag.Int("sessions", 1000, "concurrent client sessions to run")
		addr     = flag.String("addr", "", "remote mixserve address(es), comma-separated for a shard fleet (empty = in-process server over net.Pipe)")
		n        = flag.Int("n", 200, "generated customers (in-process server)")
		walk     = flag.Int("walk", 20, "siblings each session visits")
		think    = flag.Duration("think", 0, "max jittered think time between steps")
		batch    = flag.Int("batch", wire.DefaultBatchSize, "client batch window cap")
		ramp     = flag.Duration("ramp", 0, "spread session starts over this duration (0 = storm)")
		retries  = flag.Int("retries", 5, "client transport retry budget (deliberate overload means repeated eviction)")
		seed     = flag.Int64("seed", 42, "workload seed")
		jsonOut  = flag.Bool("json", false, "emit the full JSON report on stdout")
		check    = flag.Bool("check", false, "exit non-zero unless every session completed and counters are sane")

		maxSessions = flag.Int("max-sessions", 0, "in-process server: admitted session cap (0 = unlimited)")
		sessionIdle = flag.Duration("session-idle", 0, "in-process server: idle eviction threshold (0 = never)")
		sessionMem  = flag.Int64("session-mem", 0, "in-process server: per-session frame-byte quota (0 = unlimited)")
		sessionOp   = flag.Duration("session-optime", 0, "in-process server: per-session op-time quota (0 = unlimited)")
		retryAfter  = flag.Duration("retry-after", 0, "in-process server: busy retry hint (0 = default)")
	)
	flag.Parse()

	// dialFor hands session i its transport; with a comma-separated -addr
	// the sessions round-robin across the fleet's shards and shardOf labels
	// each session for the per-shard breakdown of the report.
	var dialFor func(i int) func() (io.ReadWriteCloser, error)
	shardOf := func(int) string { return "" }
	var srv *wire.Server
	var serveWG sync.WaitGroup // in-process ServeConn goroutines
	if *addr == "" {
		med := mix.NewWith(mix.Config{})
		med.AddRelationalSource(workload.ScaleDB("db1", *n, 5, 42))
		fail(med.AliasSource("&root1", "&db1.customer"))
		fail(med.AliasSource("&root2", "&db1.orders"))
		_, err := med.DefineView("rootv", workload.Q1)
		fail(err)
		srv = wire.NewServer(med)
		srv.MaxSessions = *maxSessions
		srv.SessionIdle = *sessionIdle
		srv.SessionMem = *sessionMem
		srv.SessionOpTime = *sessionOp
		srv.RetryAfter = *retryAfter
		dial := func() (io.ReadWriteCloser, error) {
			cc, sc := net.Pipe()
			serveWG.Add(1)
			go func() {
				defer serveWG.Done()
				_ = srv.ServeConn(sc)
			}()
			return cc, nil
		}
		dialFor = func(int) func() (io.ReadWriteCloser, error) { return dial }
	} else {
		addrs := strings.Split(*addr, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		dialFor = func(i int) func() (io.ReadWriteCloser, error) {
			a := addrs[i%len(addrs)]
			return func() (io.ReadWriteCloser, error) { return net.Dial("tcp", a) }
		}
		if len(addrs) > 1 {
			shardOf = func(i int) string { return addrs[i%len(addrs)] }
		}
	}

	// Peak-heap sampler: "bounded memory" is an acceptance criterion, so
	// measure it instead of asserting it.
	var peakHeap uint64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		var ms runtime.MemStats
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peakHeap {
					peakHeap = ms.HeapAlloc
				}
			}
		}
	}()

	results := make([]sessionResult, *sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		if *ramp > 0 && *sessions > 1 {
			time.Sleep(*ramp / time.Duration(*sessions))
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runSession(i, dialFor(i), *walk, *think, *batch, *retries, *seed)
			results[i].shard = shardOf(i)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stopSampler)
	<-samplerDone

	var st mix.SessionStats
	if srv != nil {
		_ = srv.Close() // retire all sessions, stop the eviction clock
		// Evicted sessions' goroutines may still be winding down (their
		// finish reconciles the memory accounting); wait before snapshotting.
		serveWG.Wait()
		st = srv.SessionStats()
	}

	rep := buildReport(results, wall, peakHeap, st, srv != nil)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fail(enc.Encode(&rep))
	} else {
		fmt.Printf("mixload: %d sessions, %d completed, %d failed in %v\n",
			rep.Sessions, rep.Completed, rep.Failed, wall.Round(time.Millisecond))
		fmt.Printf("  open  p50 %v  p99 %v   nav p50 %v  p99 %v\n",
			time.Duration(rep.OpenP50Us)*time.Microsecond, time.Duration(rep.OpenP99Us)*time.Microsecond,
			time.Duration(rep.NavP50Us)*time.Microsecond, time.Duration(rep.NavP99Us)*time.Microsecond)
		fmt.Printf("  disrupted %d (busy/evicted/redialed), completed anyway %d (%.2f%%)\n",
			rep.Disrupted, rep.DisruptedOK, 100*rep.DisruptedOKRate)
		fmt.Printf("  client: %d requests, %d busy retries, %d resumes, %d redials\n",
			rep.Requests, rep.BusyRetries, rep.Resumes, rep.Redials)
		if srv != nil {
			fmt.Printf("  server: accepted %d, busy %d, shed %d, idle-evicted %d, optime-evicted %d, resumed %d (peak live %d), shed-rate %.3f\n",
				st.Accepted, st.RejectedBusy, st.Shed, st.IdleEvicted, st.OpTimeEvicted, st.Resumed, st.Peak, rep.ShedRate)
		}
		fmt.Printf("  peak heap %.1f MiB\n", float64(peakHeap)/(1<<20))
		for _, s := range rep.Shards {
			breakers := make([]string, 0, len(s.Breakers))
			for state, n := range s.Breakers {
				breakers = append(breakers, fmt.Sprintf("%s×%d", state, n))
			}
			sort.Strings(breakers)
			fmt.Printf("  shard %-21s %4d sessions %7d RTs %9d B sent %11d B received  breakers %s\n",
				s.Addr, s.Sessions, s.Requests, s.BytesSent, s.BytesRecv, strings.Join(breakers, " "))
		}
		for msg, count := range rep.Errors {
			fmt.Printf("  error ×%d: %s\n", count, msg)
		}
	}

	if *check {
		fail(sanity(&rep, st, srv != nil, *maxSessions))
	}
}

// sessionResult is one session's outcome: its op latencies, whether it
// completed its walk, and whether admission control ever disrupted it.
type sessionResult struct {
	openUs    int64   // first-op latency (admission + open/query), microseconds
	navUs     []int64 // per-navigation-step latencies, microseconds
	err       error
	disrupted bool // saw a busy rejection, an eviction resume, or a redial
	stats     wire.WireStats
	breaker   string // client breaker state at session end
	shard     string // fleet shard address this session was assigned ("" = single server)
}

// runSession returns by name: the deferred stats harvest below must land in
// the value the caller sees.
func runSession(i int, dial func() (io.ReadWriteCloser, error), walk int, think time.Duration, batch, retries int, seed int64) (res sessionResult) {
	conn, err := dial()
	if err != nil {
		res.err = fmt.Errorf("dial: %w", err)
		return res
	}
	c := wire.NewClientConfig(conn, wire.ClientConfig{
		Redial:     dial,
		BatchSize:  batch,
		MaxRetries: retries,
		Seed:       seed + int64(i) + 1,
	})
	defer func() {
		res.stats = c.WireStats()
		res.breaker = c.BreakerSnapshot().State.String()
		res.disrupted = res.stats.BusyRetries > 0 || res.stats.Resumes > 0 || res.stats.Redials > 0
		_ = c.Close()
	}()
	rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))

	// Every fourth session runs the full query; the rest open the view and
	// navigate — the mixed query/navigation population of the paper's
	// client/server deployment.
	var root *wire.RemoteNode
	begin := time.Now()
	if i%4 == 0 {
		root, err = c.Query(workload.Q1)
	} else {
		root, err = c.Open("rootv")
	}
	res.openUs = time.Since(begin).Microseconds()
	if err != nil {
		res.err = fmt.Errorf("open: %w", err)
		return res
	}
	node, err := root.Down()
	if err != nil {
		res.err = fmt.Errorf("down: %w", err)
		return res
	}
	for step := 0; node != nil && step < walk; step++ {
		_ = node.Label()
		if node.IsLeaf() {
			_, _ = node.Value()
		}
		if think > 0 {
			time.Sleep(time.Duration(rng.Int63n(int64(think) + 1)))
		}
		begin = time.Now()
		next, err := node.Right()
		res.navUs = append(res.navUs, time.Since(begin).Microseconds())
		if err != nil {
			res.err = fmt.Errorf("right (step %d): %w", step, err)
			return res
		}
		_ = node.Release()
		node = next
	}
	if node != nil {
		_ = node.Release()
	}
	_ = root.Release()
	return res
}

// report is the JSON document mixload emits; BENCH_load.json embeds one.
type report struct {
	Sessions  int `json:"sessions"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	WallMs    int64   `json:"wall_ms"`
	OpenP50Us int64   `json:"open_p50_us"`
	OpenP99Us int64   `json:"open_p99_us"`
	NavP50Us  int64   `json:"nav_p50_us"`
	NavP99Us  int64   `json:"nav_p99_us"`
	NavOps    int     `json:"nav_ops"`
	PeakHeapB uint64  `json:"peak_heap_bytes"`
	ShedRate  float64 `json:"shed_rate"`

	// Disrupted sessions saw admission control act on them (busy response,
	// eviction resume, or redial); DisruptedOK completed their walk anyway.
	Disrupted       int     `json:"disrupted"`
	DisruptedOK     int     `json:"disrupted_ok"`
	DisruptedOKRate float64 `json:"disrupted_ok_rate"`

	Requests    int64 `json:"requests"`
	BusyRetries int64 `json:"busy_retries"`
	Resumes     int64 `json:"resumes"`
	Redials     int64 `json:"redials"`

	Server *mix.SessionStats `json:"server,omitempty"`

	// Shards is the per-shard breakdown when -addr names a fleet: the wire
	// counters of every session round-robined onto that shard, merged.
	Shards []shardLoad `json:"shards,omitempty"`

	Errors map[string]int `json:"errors,omitempty"`
}

// shardLoad is one fleet shard's merged client-side wire counters.
type shardLoad struct {
	Addr        string         `json:"addr"`
	Sessions    int            `json:"sessions"`
	Requests    int64          `json:"requests"`
	BytesSent   int64          `json:"bytes_sent"`
	BytesRecv   int64          `json:"bytes_recv"`
	BusyRetries int64          `json:"busy_retries"`
	Redials     int64          `json:"redials"`
	Breakers    map[string]int `json:"breakers"` // breaker state -> session count
}

func buildReport(results []sessionResult, wall time.Duration, peakHeap uint64, st mix.SessionStats, haveServer bool) report {
	rep := report{
		Sessions:  len(results),
		WallMs:    wall.Milliseconds(),
		PeakHeapB: peakHeap,
		Errors:    map[string]int{},
	}
	var opens, navs []int64
	byShard := map[string]*shardLoad{}
	for i := range results {
		r := &results[i]
		if r.shard != "" {
			s := byShard[r.shard]
			if s == nil {
				s = &shardLoad{Addr: r.shard, Breakers: map[string]int{}}
				byShard[r.shard] = s
			}
			s.Sessions++
			s.Requests += r.stats.RequestsSent
			s.BytesSent += r.stats.BytesSent
			s.BytesRecv += r.stats.BytesRecv
			s.BusyRetries += r.stats.BusyRetries
			s.Redials += r.stats.Redials
			s.Breakers[r.breaker]++
		}
		if r.err == nil {
			rep.Completed++
		} else {
			rep.Failed++
			msg := r.err.Error()
			if len(msg) > 120 {
				msg = msg[:120]
			}
			rep.Errors[msg]++
		}
		if r.disrupted {
			rep.Disrupted++
			if r.err == nil {
				rep.DisruptedOK++
			}
		}
		opens = append(opens, r.openUs)
		navs = append(navs, r.navUs...)
		rep.Requests += r.stats.RequestsSent
		rep.BusyRetries += r.stats.BusyRetries
		rep.Resumes += r.stats.Resumes
		rep.Redials += r.stats.Redials
	}
	rep.NavOps = len(navs)
	rep.OpenP50Us, rep.OpenP99Us = percentiles(opens)
	rep.NavP50Us, rep.NavP99Us = percentiles(navs)
	if rep.Disrupted > 0 {
		rep.DisruptedOKRate = float64(rep.DisruptedOK) / float64(rep.Disrupted)
	}
	if haveServer {
		rep.Server = &st
		if st.Accepted > 0 {
			rep.ShedRate = float64(st.Shed+st.IdleEvicted+st.OpTimeEvicted) / float64(st.Accepted)
		}
	}
	for _, s := range byShard {
		rep.Shards = append(rep.Shards, *s)
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].Addr < rep.Shards[j].Addr })
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	return rep
}

func percentiles(us []int64) (p50, p99 int64) {
	if len(us) == 0 {
		return 0, 0
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	return us[len(us)/2], us[(len(us)*99)/100]
}

// sanity is the -check gate CI runs: every session completed, and the
// session counters tell a coherent story.
func sanity(rep *report, st mix.SessionStats, haveServer bool, maxSessions int) error {
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d sessions failed: %v", rep.Failed, rep.Sessions, rep.Errors)
	}
	if !haveServer {
		return nil
	}
	if st.Accepted < int64(rep.Sessions) {
		return fmt.Errorf("accepted %d < %d sessions: some sessions never admitted yet all completed?", st.Accepted, rep.Sessions)
	}
	if evicted := st.Shed + st.IdleEvicted + st.OpTimeEvicted; evicted > st.Accepted {
		return fmt.Errorf("shed-rate insanity: %d evictions > %d admissions", evicted, st.Accepted)
	}
	if st.Resumed > st.Accepted {
		return fmt.Errorf("counter insanity: %d resumes > %d admissions", st.Resumed, st.Accepted)
	}
	if st.Live != 0 || st.MemBytes != 0 {
		return fmt.Errorf("server not drained: %d live sessions, %d outstanding bytes", st.Live, st.MemBytes)
	}
	if maxSessions > 0 && rep.Sessions > maxSessions && st.RejectedBusy == 0 && st.Shed == 0 {
		return fmt.Errorf("offered %d sessions over a %d cap but admission control never acted (no busy, no shed)", rep.Sessions, maxSessions)
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixload:", err)
		os.Exit(1)
	}
}

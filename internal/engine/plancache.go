package engine

import (
	"fmt"

	"mix/internal/cache"
	"mix/internal/source"
	"mix/internal/xmas"
)

// PlanCache memoizes CompileWith: the xmas.Verify pass plus the full
// operator-tree compilation, which every query and every wire "open" pays
// per issue (PR 4 made every compile verify, so repeated compilation is the
// hot tail of browse-style workloads). Keys are the canonical plan text
// (xmas.CanonicalKey — the mediator's per-query result ids are normalized
// away), the catalog identity and structural version (compile resolves
// sources eagerly, so registering a document invalidates cached programs),
// and the execution options.
//
// Caching a *Program is safe because a Program is immutable after compile:
// all mutable cursor state is created per Run inside the compiled closures.
// On a hit whose requested root id differs from the cached one, a shallow
// copy with the id rebound is returned, so the served document's root id is
// exactly what an uncached compile would have produced.
type PlanCache struct {
	lru *cache.LRU[string, *Program]
}

// NewPlanCache creates a cache holding at most entries compiled programs.
func NewPlanCache(entries int) *PlanCache {
	return &PlanCache{lru: cache.NewLRU[string, *Program](entries)}
}

// Stats snapshots the hit/miss/eviction counters.
func (pc *PlanCache) Stats() cache.Stats { return pc.lru.Stats() }

// CompileWith is the caching counterpart of the package-level CompileWith.
// A nil receiver compiles directly — callers hold one optional cache and
// never branch.
func (pc *PlanCache) CompileWith(plan xmas.Op, cat *source.Catalog, opts Options) (*Program, error) {
	if pc == nil {
		return CompileWith(plan, cat, opts)
	}
	key := fmt.Sprintf("%s\x01%p\x01%d\x01%s", xmas.CanonicalKey(plan), cat, cat.StructVersion(), optsKey(opts))
	if p, ok := pc.lru.Get(key); ok {
		return p.withRoot(plan), nil
	}
	p, err := CompileWith(plan, cat, opts)
	if err != nil {
		return nil, err // errors are not cached; failing queries are rare
	}
	pc.lru.Put(key, p)
	return p, nil
}

// optsKey fingerprints the execution options a compiled program bakes in.
func optsKey(o Options) string {
	return fmt.Sprintf("%t|%d|%t|%d|%d|%d|%t|%t", o.PartialResults, o.BatchSize, o.Prefetch,
		o.Parallelism, o.ExchangeBuffer, o.BatchExec, o.PathIndex, o.CostOpt)
}

// withRoot rebinds the cached program to the root id of the requesting
// plan: the cache key canonicalizes root ids away, so two queries that
// differ only in their generated result id share one compiled program but
// still serve documents rooted at their own ids.
func (p *Program) withRoot(plan xmas.Op) *Program {
	rootID := "&result"
	if td, ok := plan.(*xmas.TD); ok && td.RootID != "" {
		rootID = td.RootID
		if rootID[0] != '&' {
			rootID = "&" + rootID
		}
	}
	if rootID == p.rootID {
		return p
	}
	cp := *p
	cp.plan = plan
	cp.rootID = rootID
	return &cp
}

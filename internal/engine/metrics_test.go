package engine_test

import (
	"strings"
	"testing"

	"mix/internal/engine"
	"mix/internal/translate"
	"mix/internal/workload"
	"mix/internal/xquery"
)

func TestRunWithMetrics(t *testing.T) {
	cat, _ := workload.PaperCatalog()
	tr := translate.MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	prog, err := engine.Compile(tr.Plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, m := prog.RunWithMetrics()

	// Before navigation: nothing produced anywhere.
	if m.Total() != 0 {
		t.Fatalf("metrics before navigation: %s", m)
	}
	res.Materialize()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// The join produces one tuple per matching (customer, order): 3.
	if got := m.Count("join"); got != 3 {
		t.Fatalf("join produced %d tuples, want 3; all: %s", got, m)
	}
	// Two groups.
	if got := m.Count("gBy"); got != 2 {
		t.Fatalf("gBy produced %d, want 2; all: %s", got, m)
	}
	// Sources: 2 customers + 4 orders through mkSrc.
	if got := m.Count("mkSrc"); got != 6 {
		t.Fatalf("mkSrc produced %d, want 6; all: %s", got, m)
	}
	if !strings.Contains(m.String(), "crElt=") {
		t.Fatalf("rendering: %s", m)
	}
	if m.Total() == 0 {
		t.Fatal("total")
	}
}

func TestRunWithMetricsPartialNavigation(t *testing.T) {
	cat, _ := workload.PaperCatalog()
	tr := translate.MustTranslate(xquery.MustParse(workload.Q1), "rootv")
	prog, err := engine.Compile(tr.Plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	res, m := prog.RunWithMetrics()
	res.Root.Kids().Get(0) // first CustRec only
	partial := m.Total()
	if partial == 0 {
		t.Fatal("navigation produced no work")
	}
	res.Materialize()
	if m.Total() <= partial {
		t.Fatalf("full materialization should add work: %d then %d", partial, m.Total())
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *engine.Metrics
	if m.Count("x") != 0 || m.Total() != 0 {
		t.Fatal("nil metrics must be inert")
	}
	if m.String() == "" {
		t.Fatal("nil metrics rendering")
	}
}

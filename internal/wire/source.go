package wire

import (
	"fmt"
	"strings"

	"mix/internal/source"
	"mix/internal/xmlio"
	"mix/internal/xtree"
)

// RemoteDoc adapts a remote virtual document (a node at another MIX
// mediator, reached through the wire protocol) as a source document of a
// local mediator — true distributed federation: the upper mediator's
// navigation turns into wire round trips, which turn into demand-driven
// source access at the lower mediator.
//
// As with the in-process variant, laziness is preserved across top-level
// children (one remote child is fetched per pull); within one child the
// subtree is materialized on first visit.
//
// Failure policy: any failure to reach the lower mediator (transport
// error, circuit open, server rejection) surfaces from the cursor as a
// typed *source.SourceUnavailableError, which the engine either propagates
// (fail-fast, the default) or converts into an annotated partial result
// under the opt-in policy (mix.Config.PartialResults). The doc also
// implements source.HealthReporter, exposing the client's circuit-breaker
// state through Catalog.Health.
type RemoteDoc struct {
	id   string
	root *RemoteNode
}

// NewRemoteDoc wraps a remote node (usually a result root from
// Client.Open/Query) as a document with the given source id.
func NewRemoteDoc(id string, root *RemoteNode) *RemoteDoc {
	return &RemoteDoc{id: id, root: root}
}

// RootID implements source.Doc.
func (d *RemoteDoc) RootID() string { return d.id }

// Health implements source.HealthReporter: the endpoint's breaker state.
func (d *RemoteDoc) Health() source.Health {
	if d.root == nil {
		return source.Health{State: "closed"}
	}
	snap := d.root.c.BreakerSnapshot()
	h := source.Health{
		State:               snap.State.String(),
		ConsecutiveFailures: snap.ConsecutiveFailures,
	}
	if snap.LastErr != nil {
		h.LastError = snap.LastErr.Error()
	}
	return h
}

// TransferStats implements source.TransferReporter: the endpoint client's
// wire counters restated in source-layer terms, so fleet coordinators can
// aggregate per-shard traffic without importing this package.
func (d *RemoteDoc) TransferStats() source.TransferStats {
	if d.root == nil {
		return source.TransferStats{}
	}
	st := d.root.c.WireStats()
	return source.TransferStats{
		RoundTrips: st.RequestsSent,
		BytesSent:  st.BytesSent,
		BytesRecv:  st.BytesRecv,
		Redials:    st.Redials,
		Resumes:    st.Resumes,
		Breaker:    d.root.c.BreakerSnapshot().State.String(),
		BinaryWire: st.BinaryWire,
	}
}

// Open implements source.Doc: a cursor over the remote root's children,
// batched at the client's defaults.
func (d *RemoteDoc) Open() (source.ElemCursor, error) { return d.OpenBatch(0, false) }

// OpenAsync implements source.AsyncOpener: the remote open (a network round
// trip) and a bounded read-ahead run on a producer goroutine, so a parallel
// execution contacts distinct remote mediators concurrently — compounding
// with the batched prefetch OpenBatch already does.
func (d *RemoteDoc) OpenAsync(batchSize int, prefetch bool) source.ElemCursor {
	return source.OpenAhead(func() (source.ElemCursor, error) {
		return d.OpenBatch(batchSize, prefetch)
	}, 16)
}

// OpenBatch implements source.BatchOpener: a cursor whose children arrive
// in adaptive deep batches (each frame ships its subtree XML, so the
// per-child materialize round trip disappears too). batchSize 0 takes the
// client's configured batch size; 1 or negative falls back to one round
// trip per step+materialize, today's exact behaviour. prefetch keeps one
// batch in flight ahead of the engine's consumption.
func (d *RemoteDoc) OpenBatch(batchSize int, prefetch bool) (source.ElemCursor, error) {
	deep := batchSize == 0 && d.root.c.cfg.BatchSize > 1 || batchSize > 1
	first, err := d.root.DownScan(ScanConfig{BatchSize: batchSize, Prefetch: prefetch, Deep: deep})
	if err != nil {
		return nil, &source.SourceUnavailableError{
			Source: d.id,
			Err:    fmt.Errorf("opening remote doc: %w", err),
		}
	}
	return &remoteCursor{src: d.id, next: first}, nil
}

type remoteCursor struct {
	src  string
	next *RemoteNode
}

func (c *remoteCursor) Next() (*xtree.Node, bool, error) {
	if c.next == nil {
		return nil, false, nil
	}
	cur := c.next
	xml, err := cur.Materialize()
	if err != nil {
		return nil, false, c.unavailable(err)
	}
	// The XML serialization drops interior object ids; re-id the subtree
	// deterministically under the remote root id so node identity (skolem
	// arguments, duplicate elimination) stays meaningful locally.
	n, err := xmlio.ParseWith(xml, xmlio.Options{
		IDPrefix: strings.TrimPrefix(cur.ID(), "&"),
	})
	if err != nil {
		return nil, false, fmt.Errorf("wire: remote subtree: %w", err)
	}
	// Preserve the remote object id on the subtree root itself.
	n.ID = xtree.ID(cur.ID())
	c.next, err = cur.Right()
	if err != nil {
		return nil, false, c.unavailable(err)
	}
	// The consumed child's handle is no longer needed; release it so the
	// server session's handle table stays bounded during long scans.
	_ = cur.Release()
	return n, true, nil
}

func (c *remoteCursor) unavailable(err error) error {
	return &source.SourceUnavailableError{Source: c.src, Err: err}
}

// Close releases the cursor's outstanding server-side handle and abandons
// any read-ahead its batch window holds (undelivered frames are queued for
// piggybacked release, so partial scans leak no handles).
func (c *remoteCursor) Close() {
	if c.next != nil {
		if c.next.win != nil {
			c.next.win.abandon()
		}
		_ = c.next.Release()
		c.next = nil
	}
}

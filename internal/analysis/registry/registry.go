// Package registry is the single source of truth for the mixvet analyzer
// set. The driver, the docs table and the CI gate all consume this list; a
// new analyzer lands by being appended here, and the registry test fails if
// an analyzer package exists that the list forgot.
package registry

import (
	"mix/internal/analysis"
	"mix/internal/analysis/atomiccell"
	"mix/internal/analysis/cursorclose"
	"mix/internal/analysis/framebudget"
	"mix/internal/analysis/goroutinelife"
	"mix/internal/analysis/lockorder"
	"mix/internal/analysis/quotabalance"
	"mix/internal/analysis/versionkey"
)

// All returns every registered analyzer, in the order the driver runs and
// documents them.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cursorclose.Analyzer,
		framebudget.Analyzer,
		atomiccell.Analyzer,
		lockorder.Analyzer,
		quotabalance.Analyzer,
		versionkey.Analyzer,
		goroutinelife.Analyzer,
	}
}

// Command mixserve hosts a MIX mediator as a server speaking the QDOM wire
// protocol (the paper's client/server deployment: a mediator process, thin
// clients navigating remotely).
//
//	mixserve -addr :7713 -n 1000
//
// Clients connect with the internal/wire client library; navigation
// evaluates QDOM steps remotely, with sibling scans batched adaptively
// (children/scan ops, capped by -max-batch) while staying demand-driven.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"mix"
	"mix/internal/wire"
	"mix/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7713", "listen address")
		n           = flag.Int("n", 1000, "generated customers")
		maxHandles  = flag.Int("max-handles", wire.DefaultMaxHandles, "per-session node handle limit")
		maxBatch    = flag.Int("max-batch", wire.DefaultMaxBatch, "per-response frame cap for batched children/scan ops")
		parallelism = flag.Int("parallelism", 1, "goroutines per query execution (1 = strictly sequential evaluation)")
		exchangeBuf = flag.Int("exchange-buffer", 0, "exchange operator tuple buffer (0 = engine default)")
		planCache   = flag.Int("plan-cache", 0, "memoized plans per pipeline stage (0 = plan caching off)")
		srcCache    = flag.Int("source-cache", 0, "memoized relational result sets (0 = result caching off)")
	)
	flag.Parse()

	med := mix.NewWith(mix.Config{
		Parallelism:    *parallelism,
		ExchangeBuffer: *exchangeBuf,
		PlanCache:      *planCache,
		SourceCache:    *srcCache,
	})
	med.AddRelationalSource(workload.ScaleDB("db1", *n, 5, 42))
	fail(med.AliasSource("&root1", "&db1.customer"))
	fail(med.AliasSource("&root2", "&db1.orders"))
	_, err := med.DefineView("rootv", workload.Q1)
	fail(err)

	l, err := net.Listen("tcp", *addr)
	fail(err)
	fmt.Printf("mixserve: CustRec view over %d customers on %s\n", *n, l.Addr())
	srv := wire.NewServer(med)
	srv.MaxHandles = *maxHandles
	srv.MaxBatch = *maxBatch
	srv.ErrorLog = func(err error) { fmt.Fprintln(os.Stderr, "mixserve:", err) }
	fail(srv.Serve(l))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixserve:", err)
		os.Exit(1)
	}
}

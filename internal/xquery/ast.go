package xquery

import (
	"strings"

	"mix/internal/xtree"
)

// Query is a FOR-WHERE-RETURN expression (paper Figure 4). Queries also
// appear nested inside element constructors ("ElementList ::= ... | Query").
type Query struct {
	For   []ForBinding
	Where []Condition
	// OrderBy lists variables whose node ids order the result (an
	// extension mapping onto the XMAS orderBy operator, which sorts by
	// ids; the paper's Figure 4 grammar has no order clause).
	OrderBy []string
	Return  Element
}

// ForBinding binds Var to the nodes reached by Path from either a document
// root (Source non-empty) or another variable (FromVar non-empty). The two
// forms correspond to the paper's
//
//	$v IN document("src")/label/path
//	$v IN Variable/path
//
// Source keeps whatever the query wrote: "&root1" (an oid constant, as in
// source(&root1)), a name like "db1", or the special name "root" used by
// in-place queries issued from a navigation node (paper Section 2, command q).
type ForBinding struct {
	Var     string
	Source  string
	FromVar string
	Path    []string
}

// Condition is one conjunct of the WHERE clause.
type Condition struct {
	Left  Operand
	Op    xtree.CmpOp
	Right Operand
}

// Operand is one side of a comparison: either a constant or a path rooted at
// a variable, optionally ending in data() (which atomizes the reached node;
// see xtree.Node.Atom).
type Operand struct {
	IsConst bool
	Const   string

	Var  string
	Path []string
	Data bool
}

// Element is the RETURN-clause content: either an element constructor or a
// variable reference.
type Element interface {
	Content
	isElement()
}

// Content is anything that may appear inside an element constructor:
// a nested constructor, a variable reference, or a nested query.
type Content interface{ isContent() }

// ElemCtor is <Label> children </Label> { groupBy }.
type ElemCtor struct {
	Label    string
	Children []Content
	GroupBy  []string // variables, e.g. ["$C"]; empty when no group-by list
}

// VarRef references a bound variable inside RETURN.
type VarRef struct{ Var string }

func (*ElemCtor) isElement() {}
func (*ElemCtor) isContent() {}
func (*VarRef) isElement()   {}
func (*VarRef) isContent()   {}
func (*Query) isContent()    {}

// Vars returns the set of variables bound by the FOR clause, in order.
func (q *Query) Vars() []string {
	out := make([]string, len(q.For))
	for i, f := range q.For {
		out[i] = f.Var
	}
	return out
}

// UsesVar reports whether v occurs anywhere in the query (FOR sources,
// WHERE operands, or RETURN content, including nested queries).
func (q *Query) UsesVar(v string) bool {
	for _, f := range q.For {
		if f.FromVar == v {
			return true
		}
	}
	for _, c := range q.Where {
		if (!c.Left.IsConst && c.Left.Var == v) || (!c.Right.IsConst && c.Right.Var == v) {
			return true
		}
	}
	for _, o := range q.OrderBy {
		if o == v {
			return true
		}
	}
	return contentUsesVar(q.Return, v)
}

func contentUsesVar(c Content, v string) bool {
	switch x := c.(type) {
	case *VarRef:
		return x.Var == v
	case *ElemCtor:
		for _, g := range x.GroupBy {
			if g == v {
				return true
			}
		}
		for _, k := range x.Children {
			if contentUsesVar(k, v) {
				return true
			}
		}
	case *Query:
		return x.UsesVar(v)
	}
	return false
}

// Wildcard is the any-label path step, written '*' in queries. It matches
// the algebra's wildcard (xmas.Wildcard) so paths flow through translation
// unchanged.
const Wildcard = "%"

// PathString joins path steps with '/', rendering wildcards as '*'.
func PathString(path []string) string {
	parts := make([]string, len(path))
	for i, p := range path {
		if p == Wildcard {
			parts[i] = "*"
		} else {
			parts[i] = p
		}
	}
	return strings.Join(parts, "/")
}

package workload_test

import (
	"testing"

	"mix/internal/workload"
	"mix/internal/xquery"
)

func TestPaperDBShape(t *testing.T) {
	db := workload.PaperDB()
	cust, ok := db.Table("customer")
	if !ok || len(cust.Rows) != 2 {
		t.Fatalf("customer rows: %v", ok)
	}
	ord, ok := db.Table("orders")
	if !ok || len(ord.Rows) != 4 {
		t.Fatalf("orders rows: %v", ok)
	}
	if cust.Schema.Key[0] != 0 {
		t.Fatal("customer key must be the id column")
	}
}

func TestPaperCatalogAliases(t *testing.T) {
	cat, _ := workload.PaperCatalog()
	for _, id := range []string{"&root1", "&root2", "&db1.customer", "&db1.orders"} {
		if _, err := cat.Resolve(id); err != nil {
			t.Errorf("resolve %s: %v", id, err)
		}
	}
}

func TestPaperQueriesParse(t *testing.T) {
	for name, src := range map[string]string{
		"Q1": workload.Q1, "Q2": workload.Q2, "Q3": workload.Q3, "Fig12": workload.Fig12,
	} {
		if _, err := xquery.Parse(src); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}

func TestScaleDB(t *testing.T) {
	db := workload.ScaleDB("s", 10, 3, 42)
	cust, _ := db.Table("customer")
	ord, _ := db.Table("orders")
	if len(cust.Rows) != 10 || len(ord.Rows) != 30 {
		t.Fatalf("scale sizes: %d customers, %d orders", len(cust.Rows), len(ord.Rows))
	}
	// Reproducible.
	db2 := workload.ScaleDB("s", 10, 3, 42)
	ord2, _ := db2.Table("orders")
	for i := range ord.Rows {
		if ord.Rows[i][2] != ord2.Rows[i][2] {
			t.Fatal("ScaleDB not reproducible")
		}
	}
	// Keys zero-padded: lexicographic == numeric order.
	if cust.Rows[0][0].S >= cust.Rows[1][0].S {
		t.Fatal("customer keys not ordered")
	}
}

func TestScaleCatalog(t *testing.T) {
	cat, db := workload.ScaleCatalog(5, 2, 1)
	if db == nil {
		t.Fatal("nil db")
	}
	if _, err := cat.Resolve("&root1"); err != nil {
		t.Fatal(err)
	}
}

func TestAuctionDB(t *testing.T) {
	db := workload.AuctionDB(4, 5, 7)
	cams, _ := db.Table("camera")
	lenses, _ := db.Table("lens")
	if len(cams.Rows) != 4 || len(lenses.Rows) != 20 {
		t.Fatalf("auction sizes: %d cameras, %d lenses", len(cams.Rows), len(lenses.Rows))
	}
	// Every lens references an existing camera.
	ids := map[string]bool{}
	for _, r := range cams.Rows {
		ids[r[0].S] = true
	}
	for _, r := range lenses.Rows {
		if !ids[r[1].S] {
			t.Fatalf("dangling lens camid %s", r[1].S)
		}
	}
}

func TestPaperXMLDoc(t *testing.T) {
	doc := workload.PaperXMLDoc("customer")
	if doc.Label != "list" || len(doc.Children) != 2 {
		t.Fatalf("xml doc: %s", doc)
	}
	if doc.Children[0].Label != "customer" {
		t.Fatalf("tuple label: %s", doc.Children[0].Label)
	}
}

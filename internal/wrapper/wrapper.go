// Package wrapper exports relational data as the XML equivalent of paper
// Figure 2: each relation becomes a virtual document whose root (label
// "list") has one child per tuple, labeled with the relation name; a tuple
// element's children are its columns, each a single-leaf element holding the
// column value.
//
// The wrapper "assigns the tuple keys (e.g. XYZ123) to be the oids of the
// corresponding tuple objects — after it precedes them with the &" (Figure 2
// caption). Column elements get deterministic surrogate ids derived from the
// tuple key and column name, so repeated navigations see stable ids.
package wrapper

import (
	"strings"

	"mix/internal/relstore"
	"mix/internal/xtree"
)

// RootID returns the object id of the virtual document exporting relation
// rel of server: "&<server>.<rel>".
func RootID(server, relation string) string {
	return "&" + server + "." + relation
}

// TupleOID derives the object id of a tuple element from its key columns.
// Multi-column keys are joined with '.'; a relation without a declared key
// falls back to the row's ordinal position (surrogate ids, as the paper
// allows).
func TupleOID(s relstore.Schema, row []relstore.Datum, ordinal int) xtree.ID {
	if len(s.Key) == 0 {
		return xtree.ID("&" + s.Relation + "." + itoa(ordinal))
	}
	parts := make([]string, len(s.Key))
	for i, k := range s.Key {
		parts[i] = row[k].String()
	}
	return xtree.ID("&" + strings.Join(parts, "."))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TupleElem builds the XML tuple object for one row:
//
//	<relation> (id &key)
//	  <col1>v1</col1> <col2>v2</col2> ...
//	</relation>
func TupleElem(s relstore.Schema, row []relstore.Datum, ordinal int) *xtree.Node {
	oid := TupleOID(s, row, ordinal)
	elem := &xtree.Node{ID: oid, Label: s.Relation}
	elem.Children = make([]*xtree.Node, len(s.Columns))
	for i, col := range s.Columns {
		elem.Children[i] = &xtree.Node{
			ID:    oid + xtree.ID("."+col.Name),
			Label: col.Name,
			Children: []*xtree.Node{
				{Label: row[i].String()},
			},
		}
	}
	return elem
}

// PartialTupleElem builds a tuple object from a subset of columns (as
// reconstructed from an SQL result row by a relQuery map). cols pairs the
// column label with its value; keyVals are the key column values in key
// order.
func PartialTupleElem(relation string, keyVals []string, cols []ColValue) *xtree.Node {
	oid := xtree.ID("&" + strings.Join(keyVals, "."))
	elem := &xtree.Node{ID: oid, Label: relation}
	elem.Children = make([]*xtree.Node, len(cols))
	for i, cv := range cols {
		elem.Children[i] = &xtree.Node{
			ID:       oid + xtree.ID("."+cv.Label),
			Label:    cv.Label,
			Children: []*xtree.Node{{Label: cv.Value}},
		}
	}
	return elem
}

// ColValue pairs a column label with its string value.
type ColValue struct {
	Label string
	Value string
}

// Doc materializes the whole virtual document for a relation — the paper's
// Figure 2 picture. The engine never calls this on the hot path (it pulls
// tuples lazily); it exists for golden tests, the eager baseline, and
// exporting XML snapshots.
func Doc(db *relstore.DB, relation string) (*xtree.Node, bool) {
	t, ok := db.Table(relation)
	if !ok {
		return nil, false
	}
	root := &xtree.Node{ID: xtree.ID(RootID(db.Name, relation)), Label: "list"}
	root.Children = make([]*xtree.Node, len(t.Rows))
	for i, row := range t.Rows {
		root.Children[i] = TupleElem(t.Schema, row, i)
	}
	return root, true
}

package wire_test

import (
	"net"
	"strings"
	"testing"

	"mix"
	"mix/internal/testleak"
	"mix/internal/wire"
	"mix/internal/workload"
)

// startPair wires a client to a fresh server session over net.Pipe.
func startPair(t *testing.T) (*wire.Client, *mix.Mediator) {
	t.Helper()
	med := mix.New()
	med.AddRelationalSource(workload.PaperDB())
	if err := med.AliasSource("&root1", "&db1.customer"); err != nil {
		t.Fatal(err)
	}
	if err := med.AliasSource("&root2", "&db1.orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := med.DefineView("rootv", workload.Q1); err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	srv := wire.NewServer(med)
	go func() {
		defer server.Close()
		_ = srv.ServeConn(server)
	}()
	c := wire.NewClient(client)
	t.Cleanup(func() {
		c.Close()
		testleak.NoHandles(t, "server node handles", srv.LiveHandles)
	})
	return c, med
}

func TestPing(t *testing.T) {
	c, _ := startPair(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteSession replays Example 2.1 across the wire: navigation steps
// each evaluate one QDOM step at the mediator, and in-place queries
// decontextualize there.
func TestRemoteSession(t *testing.T) {
	c, med := startPair(t)

	p0, err := c.Open("rootv")
	if err != nil {
		t.Fatal(err)
	}
	if p0.Label() != "list" {
		t.Fatalf("root label = %q", p0.Label())
	}
	if shipped, _, _ := c.Stats(); shipped != 0 {
		t.Fatalf("open shipped %d tuples", shipped)
	}

	p1, err := p0.Down()
	if err != nil || p1.Label() != "CustRec" {
		t.Fatalf("d(p0): %v %v", p1, err)
	}
	shipped1, _, _ := c.Stats()
	if shipped1 == 0 {
		t.Fatal("first remote navigation shipped nothing")
	}

	p2, err := p1.Right()
	if err != nil || p2 == nil {
		t.Fatalf("r(p1): %v %v", p2, err)
	}
	end, err := p2.Right()
	if err != nil {
		t.Fatal(err)
	}
	if end != nil {
		t.Fatal("r past last CustRec must be ⊥")
	}

	// Descend to a leaf and read its value.
	cust, err := p2.Down()
	if err != nil || cust.Label() != "customer" {
		t.Fatalf("d(p2): %v %v", cust, err)
	}
	idElem, err := cust.Down()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := idElem.Down()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := leaf.Value(); !ok || v != "XYZ123" {
		t.Fatalf("fv(leaf) = %q, %v", v, ok)
	}
	if _, ok := cust.Value(); ok {
		t.Fatal("fv on non-leaf must be ⊥")
	}
	up, err := leaf.Up()
	if err != nil || up.Label() != "id" {
		t.Fatalf("up: %v %v", up, err)
	}

	// In-place query from the second CustRec (XYZ123).
	sub, err := p2.QueryFrom(`
FOR $O IN document(root)/OrderInfo
WHERE $O/orders/value < 500
RETURN $O`)
	if err != nil {
		t.Fatal(err)
	}
	oi, err := sub.Down()
	if err != nil || oi == nil || oi.Label() != "OrderInfo" {
		t.Fatalf("in-place result: %v %v", oi, err)
	}
	xml, err := oi.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<orid>31416</orid>") {
		t.Fatalf("materialized XML:\n%s", xml)
	}

	// Server and local stats agree.
	shipped, queries, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	local := med.Stats()
	if shipped != local.TuplesShipped || queries != local.QueriesReceived {
		t.Fatalf("stats mismatch: wire (%d,%d) vs local (%d,%d)",
			shipped, queries, local.TuplesShipped, local.QueriesReceived)
	}
}

func TestRemoteQuery(t *testing.T) {
	c, _ := startPair(t)
	root, err := c.Query(workload.Fig12)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := root.Down()
	if err != nil || rec == nil {
		t.Fatalf("query result: %v %v", rec, err)
	}
	if rec.Label() != "CustRec" {
		t.Fatalf("label = %q", rec.Label())
	}
	next, err := rec.Right()
	if err != nil {
		t.Fatal(err)
	}
	if next != nil {
		t.Fatal("Fig12 over the paper data has exactly one CustRec")
	}
}

func TestRemoteErrors(t *testing.T) {
	c, _ := startPair(t)
	if _, err := c.Open("nosuchview"); err == nil {
		t.Error("open of unknown view must fail")
	}
	if _, err := c.Query("FOR $C IN"); err == nil {
		t.Error("bad query must fail")
	}
	// The connection survives errors.
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
	p0, err := c.Open("rootv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p0.QueryFrom("FOR"); err == nil {
		t.Error("bad in-place query must fail")
	}
}

func TestServeTCP(t *testing.T) {
	med := mix.New()
	med.AddRelationalSource(workload.PaperDB())
	if err := med.AliasSource("&root1", "&db1.customer"); err != nil {
		t.Fatal(err)
	}
	if err := med.AliasSource("&root2", "&db1.orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := med.DefineView("rootv", workload.Q1); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = wire.NewServer(med).Serve(l) }()

	// Two concurrent clients with independent sessions.
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := wire.Dial(l.Addr().String())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			root, err := c.Open("rootv")
			if err != nil {
				done <- err
				return
			}
			n, err := root.Down()
			if err == nil && (n == nil || n.Label() != "CustRec") {
				err = errUnexpected
			}
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errUnexpected = &net.AddrError{Err: "unexpected navigation result"}

// TestRemoteFederation: a LOCAL mediator integrates a REMOTE mediator's
// virtual view as one of its sources, over the wire. Queries at the upper
// mediator pull through the protocol and, transitively, out of the lower
// mediator's relational source on demand.
func TestRemoteFederation(t *testing.T) {
	c, lower := startPair(t)
	remoteRoot, err := c.Open("rootv")
	if err != nil {
		t.Fatal(err)
	}

	upper := mix.New()
	upper.Catalog().AddDoc("&remote", wire.NewRemoteDoc("&remote", remoteRoot))
	if n := lower.Stats().TuplesShipped; n != 0 {
		t.Fatalf("registration shipped %d tuples at the lower mediator", n)
	}

	doc, err := upper.Query(`
FOR $R IN document(&remote)/CustRec
    $C IN $R/customer
WHERE $C/addr = "NewYork"
RETURN <Hit> $C </Hit>`)
	if err != nil {
		t.Fatal(err)
	}
	m := doc.Materialize()
	if err := doc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(m.Children) != 1 {
		t.Fatalf("federated hits = %d, want 1:\n%s", len(m.Children), m.Pretty())
	}
	name := m.Children[0].Find("name")
	if name == nil || name.Children[0].Label != "DEFCorp." {
		t.Fatalf("federated result:\n%s", m.Pretty())
	}
	if lower.Stats().TuplesShipped == 0 {
		t.Fatal("the lower mediator's source was never consulted")
	}
}

// TestProtocolRobustness: malformed requests and unknown ops/handles get
// error responses without killing the session.
func TestProtocolRobustness(t *testing.T) {
	med := mix.New()
	med.AddRelationalSource(workload.PaperDB())
	server, client := net.Pipe()
	go func() {
		defer server.Close()
		_ = wire.NewServer(med).ServeConn(server)
	}()
	defer client.Close()

	send := func(line string) string {
		if _, err := client.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		n, err := client.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf[:n])
	}

	if resp := send(`{not json`); !strings.Contains(resp, "malformed") {
		t.Fatalf("malformed request response: %s", resp)
	}
	if resp := send(`{"id":1,"op":"teleport"}`); !strings.Contains(resp, "unknown op") {
		t.Fatalf("unknown op response: %s", resp)
	}
	if resp := send(`{"id":2,"op":"down","handle":999}`); !strings.Contains(resp, "unknown handle") {
		t.Fatalf("unknown handle response: %s", resp)
	}
	if resp := send(`{"id":3,"op":"ping"}`); !strings.Contains(resp, `"ok":true`) {
		t.Fatalf("session died after errors: %s", resp)
	}
}

// TestNilRemoteNodeSafety: ⊥ handling in the client library.
func TestNilRemoteNodeSafety(t *testing.T) {
	var n *wire.RemoteNode
	if n.Label() != "" || n.ID() != "" || !n.IsLeaf() {
		t.Fatal("nil accessors")
	}
	if _, ok := n.Value(); ok {
		t.Fatal("nil value")
	}
	if _, err := n.Down(); err == nil {
		t.Fatal("navigation from ⊥ must error")
	}
	if _, err := n.QueryFrom("FOR $X IN document(root)/a RETURN $X"); err == nil {
		t.Fatal("query from ⊥ must error")
	}
	if _, err := n.Materialize(); err == nil {
		t.Fatal("materialize of ⊥ must error")
	}
}

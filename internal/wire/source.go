package wire

import (
	"fmt"
	"strings"

	"mix/internal/source"
	"mix/internal/xmlio"
	"mix/internal/xtree"
)

// RemoteDoc adapts a remote virtual document (a node at another MIX
// mediator, reached through the wire protocol) as a source document of a
// local mediator — true distributed federation: the upper mediator's
// navigation turns into wire round trips, which turn into demand-driven
// source access at the lower mediator.
//
// As with the in-process variant, laziness is preserved across top-level
// children (one remote child is fetched per pull); within one child the
// subtree is materialized on first visit.
type RemoteDoc struct {
	id   string
	root *RemoteNode
}

// NewRemoteDoc wraps a remote node (usually a result root from
// Client.Open/Query) as a document with the given source id.
func NewRemoteDoc(id string, root *RemoteNode) *RemoteDoc {
	return &RemoteDoc{id: id, root: root}
}

// RootID implements source.Doc.
func (d *RemoteDoc) RootID() string { return d.id }

// Open implements source.Doc: a cursor over the remote root's children.
func (d *RemoteDoc) Open() (source.ElemCursor, error) {
	first, err := d.root.Down()
	if err != nil {
		return nil, fmt.Errorf("wire: opening remote doc %s: %w", d.id, err)
	}
	return &remoteCursor{next: first}, nil
}

type remoteCursor struct {
	next *RemoteNode
}

func (c *remoteCursor) Next() (*xtree.Node, bool, error) {
	if c.next == nil {
		return nil, false, nil
	}
	cur := c.next
	xml, err := cur.Materialize()
	if err != nil {
		return nil, false, err
	}
	// The XML serialization drops interior object ids; re-id the subtree
	// deterministically under the remote root id so node identity (skolem
	// arguments, duplicate elimination) stays meaningful locally.
	n, err := xmlio.ParseWith(xml, xmlio.Options{
		IDPrefix: strings.TrimPrefix(cur.ID(), "&"),
	})
	if err != nil {
		return nil, false, fmt.Errorf("wire: remote subtree: %w", err)
	}
	// Preserve the remote object id on the subtree root itself.
	n.ID = xtree.ID(cur.ID())
	c.next, err = cur.Right()
	if err != nil {
		return nil, false, err
	}
	return n, true, nil
}

func (c *remoteCursor) Close() {}

// Package sqlexec executes the sqlparse SQL subset against a relstore
// database with a volcano-style iterator pipeline: scans with pushed-down
// single-table filters, hash joins for equi-predicates (nested-loop joins
// otherwise), residual filters, an optional blocking sort for ORDER BY,
// projection, and streaming hash-based DISTINCT.
//
// Results are delivered through a relstore.Cursor so the mediator pulls rows
// one at a time; every delivered row increments the server's shipped-tuple
// counter. This is the partial-result interface the paper assumes of
// relational sources.
package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"mix/internal/relstore"
	"mix/internal/sqlparse"
	"mix/internal/xtree"
)

// ExecSQL parses and executes sql against db.
func ExecSQL(db *relstore.DB, sql string) (relstore.Cursor, *Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return Exec(db, q)
}

// Result describes the shape of the rows a cursor delivers.
type Result struct {
	Cols  []sqlparse.ColRef
	Types []relstore.Type
}

// Exec plans and runs q, returning a pipelined cursor over the result and
// the result-column metadata.
func Exec(db *relstore.DB, q *sqlparse.Select) (relstore.Cursor, *Result, error) {
	db.NoteQuery()
	pl, err := plan(db, q)
	if err != nil {
		return nil, nil, err
	}
	return &countingCursor{db: db, it: pl.it}, &Result{Cols: q.Cols, Types: pl.types}, nil
}

// iter is the internal volcano iterator.
type iter interface {
	next() ([]relstore.Datum, bool)
}

type countingCursor struct {
	db     *relstore.DB
	it     iter
	closed bool
}

func (c *countingCursor) Next() ([]relstore.Datum, bool) {
	if c.closed {
		return nil, false
	}
	row, ok := c.it.next()
	if !ok {
		return nil, false
	}
	c.db.NoteShipped(1)
	return row, true
}

func (c *countingCursor) Close() { c.closed = true }

// ---- planning ----

type binding struct {
	alias  string
	table  *relstore.Table
	rows   [][]relstore.Datum // snapshot taken under the store lock at bind time
	offset int                // position of this table's first column in the joined row
}

type planned struct {
	it    iter
	types []relstore.Type
}

func plan(db *relstore.DB, q *sqlparse.Select) (*planned, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqlexec: query has no FROM clause")
	}
	// Bind FROM entries.
	bindings := make([]binding, len(q.From))
	seen := map[string]bool{}
	offset := 0
	for i, tr := range q.From {
		t, ok := db.Table(tr.Relation)
		if !ok {
			return nil, fmt.Errorf("sqlexec: unknown relation %s", tr.Relation)
		}
		if seen[tr.Alias] {
			return nil, fmt.Errorf("sqlexec: duplicate alias %s", tr.Alias)
		}
		seen[tr.Alias] = true
		// Rows are snapshotted under the store lock: concurrent Inserts
		// (producer goroutines under intra-query parallelism) append to the
		// live table, which the scan below must not observe mid-append.
		rows, _ := db.RowsSnapshot(tr.Relation)
		bindings[i] = binding{alias: tr.Alias, table: t, rows: rows, offset: offset}
		offset += len(t.Schema.Columns)
	}
	res := &resolver{bindings: bindings}

	// Classify predicates by the set of FROM entries they touch.
	type cpred struct {
		pred   sqlparse.Pred
		tables []int // indexes into bindings, sorted
	}
	var preds []cpred
	for _, p := range q.Where {
		ts, err := res.predTables(p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, cpred{pred: p, tables: ts})
	}

	// Per-table scans with pushed-down single-table predicates.
	scans := make([]iter, len(bindings))
	for i, b := range bindings {
		var filters []compiledPred
		for _, cp := range preds {
			if len(cp.tables) == 1 && cp.tables[0] == i {
				f, err := res.compileLocal(cp.pred, i)
				if err != nil {
					return nil, err
				}
				filters = append(filters, f)
			}
		}
		scans[i] = &scanIter{rows: b.rows, filters: filters}
	}

	// Left-deep joins in FROM order.
	current := scans[0]
	joined := map[int]bool{0: true}
	for i := 1; i < len(bindings); i++ {
		// Find predicates that become evaluable once table i joins in, and
		// among them an equi-join predicate to drive a hash join.
		var applicable []compiledPred
		var hashL, hashR func([]relstore.Datum) relstore.Datum
		for _, cp := range preds {
			if len(cp.tables) < 2 {
				continue
			}
			touchesI := false
			allAvailable := true
			for _, t := range cp.tables {
				if t == i {
					touchesI = true
				} else if !joined[t] {
					allAvailable = false
				}
			}
			if !touchesI || !allAvailable {
				continue
			}
			f, err := res.compileJoined(cp.pred, i)
			if err != nil {
				return nil, err
			}
			if hashL == nil && cp.pred.Op == xtree.OpEQ && !cp.pred.Left.IsLit && !cp.pred.Right.IsLit {
				lt, _ := res.exprTable(cp.pred.Left)
				rt, _ := res.exprTable(cp.pred.Right)
				var leftRef, rightRef sqlparse.ColRef
				if lt == i {
					leftRef, rightRef = cp.pred.Right.Col, cp.pred.Left.Col
				} else if rt == i {
					leftRef, rightRef = cp.pred.Left.Col, cp.pred.Right.Col
				}
				if leftRef.Column != "" {
					lo, _, err1 := res.resolve(leftRef)
					ro, _, err2 := res.resolve(rightRef)
					if err1 == nil && err2 == nil {
						lo, ro := lo, ro
						hashL = func(row []relstore.Datum) relstore.Datum { return row[lo] }
						// right side is indexed within table i's own row
						riOff := ro - bindings[i].offset
						hashR = func(row []relstore.Datum) relstore.Datum { return row[riOff] }
						continue // handled by hash join itself
					}
				}
			}
			applicable = append(applicable, f)
		}
		if hashL != nil {
			current = newHashJoin(current, scans[i], hashL, hashR, applicable)
		} else {
			current = newNestedLoopJoin(current, scans[i], applicable)
		}
		joined[i] = true
	}

	// ORDER BY (blocking sort on datum order).
	if len(q.OrderBy) > 0 {
		keys := make([]int, len(q.OrderBy))
		for i, c := range q.OrderBy {
			off, _, err := res.resolve(c)
			if err != nil {
				return nil, err
			}
			keys[i] = off
		}
		current = &sortIter{in: current, keys: keys}
	}

	// Projection.
	outOffsets := make([]int, len(q.Cols))
	outTypes := make([]relstore.Type, len(q.Cols))
	for i, c := range q.Cols {
		off, typ, err := res.resolve(c)
		if err != nil {
			return nil, err
		}
		outOffsets[i] = off
		outTypes[i] = typ
	}
	current = &projectIter{in: current, offsets: outOffsets}

	if q.Distinct {
		current = &distinctIter{in: current, seen: map[string]bool{}}
	}
	return &planned{it: current, types: outTypes}, nil
}

// ---- name resolution ----

type resolver struct {
	bindings []binding
}

// resolve maps a column reference to its offset in the joined row.
func (r *resolver) resolve(c sqlparse.ColRef) (offset int, typ relstore.Type, err error) {
	found := -1
	for _, b := range r.bindings {
		if c.Qualifier != "" && b.alias != c.Qualifier {
			continue
		}
		if idx := b.table.Schema.ColIndex(c.Column); idx >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqlexec: ambiguous column %s", c)
			}
			found = b.offset + idx
			typ = b.table.Schema.Columns[idx].Type
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlexec: unknown column %s", c)
	}
	return found, typ, nil
}

// exprTable returns the binding index an expression's column belongs to,
// or -1 for literals.
func (r *resolver) exprTable(e sqlparse.Expr) (int, error) {
	if e.IsLit {
		return -1, nil
	}
	for i, b := range r.bindings {
		if e.Col.Qualifier != "" && b.alias != e.Col.Qualifier {
			continue
		}
		if b.table.Schema.ColIndex(e.Col.Column) >= 0 {
			return i, nil
		}
	}
	return -1, fmt.Errorf("sqlexec: unknown column %s", e.Col)
}

func (r *resolver) predTables(p sqlparse.Pred) ([]int, error) {
	set := map[int]bool{}
	for _, e := range []sqlparse.Expr{p.Left, p.Right} {
		t, err := r.exprTable(e)
		if err != nil {
			return nil, err
		}
		if t >= 0 {
			set[t] = true
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out, nil
}

// compiledPred evaluates a predicate over a row.
type compiledPred func(row []relstore.Datum) bool

// compileLocal compiles a predicate over a single table's own row (offsets
// relative to that table).
func (r *resolver) compileLocal(p sqlparse.Pred, tableIdx int) (compiledPred, error) {
	return r.compile(p, r.bindings[tableIdx].offset)
}

// compileJoined compiles a predicate over the joined row; the right input of
// the in-progress join occupies its global offsets already.
func (r *resolver) compileJoined(p sqlparse.Pred, _ int) (compiledPred, error) {
	return r.compile(p, 0)
}

func (r *resolver) compile(p sqlparse.Pred, rebase int) (compiledPred, error) {
	getter := func(e sqlparse.Expr, other sqlparse.Expr) (func([]relstore.Datum) relstore.Datum, error) {
		if e.IsLit {
			var typ relstore.Type = relstore.TString
			if !other.IsLit {
				if _, t, err := r.resolve(other.Col); err == nil {
					typ = t
				}
			}
			d, err := relstore.ParseDatum(typ, e.Lit)
			if err != nil {
				// Fall back to string comparison (mirrors the loose typing
				// of xtree.CompareValues).
				d = relstore.Str(e.Lit)
			}
			return func([]relstore.Datum) relstore.Datum { return d }, nil
		}
		off, _, err := r.resolve(e.Col)
		if err != nil {
			return nil, err
		}
		off -= rebase
		return func(row []relstore.Datum) relstore.Datum { return row[off] }, nil
	}
	lf, err := getter(p.Left, p.Right)
	if err != nil {
		return nil, err
	}
	rf, err := getter(p.Right, p.Left)
	if err != nil {
		return nil, err
	}
	op := p.Op
	return func(row []relstore.Datum) bool {
		c := relstore.Compare(lf(row), rf(row))
		switch op {
		case xtree.OpEQ:
			return c == 0
		case xtree.OpNE:
			return c != 0
		case xtree.OpLT:
			return c < 0
		case xtree.OpLE:
			return c <= 0
		case xtree.OpGT:
			return c > 0
		case xtree.OpGE:
			return c >= 0
		}
		return false
	}, nil
}

// ---- iterators ----

type scanIter struct {
	rows    [][]relstore.Datum
	filters []compiledPred
	pos     int
}

func (s *scanIter) next() ([]relstore.Datum, bool) {
outer:
	for s.pos < len(s.rows) {
		row := s.rows[s.pos]
		s.pos++
		for _, f := range s.filters {
			if !f(row) {
				continue outer
			}
		}
		return row, true
	}
	return nil, false
}

func (s *scanIter) reset() { s.pos = 0 }

type nestedLoopJoin struct {
	left, right iter
	rightReset  func()
	filters     []compiledPred
	leftRow     []relstore.Datum
	started     bool
	done        bool
}

func newNestedLoopJoin(left iter, right iter, filters []compiledPred) iter {
	j := &nestedLoopJoin{left: left, right: right, filters: filters}
	if s, ok := right.(*scanIter); ok {
		j.rightReset = s.reset
	} else {
		// Materialize the right side so it can be re-scanned.
		var rows [][]relstore.Datum
		for {
			r, ok := right.next()
			if !ok {
				break
			}
			rows = append(rows, r)
		}
		s := &scanIter{rows: rows}
		j.right = s
		j.rightReset = s.reset
	}
	return j
}

func (j *nestedLoopJoin) next() ([]relstore.Datum, bool) {
	if j.done {
		return nil, false
	}
	for {
		if !j.started {
			lr, ok := j.left.next()
			if !ok {
				j.done = true
				return nil, false
			}
			j.leftRow = lr
			j.rightReset()
			j.started = true
		}
		rr, ok := j.right.next()
		if !ok {
			j.started = false
			continue
		}
		row := make([]relstore.Datum, 0, len(j.leftRow)+len(rr))
		row = append(row, j.leftRow...)
		row = append(row, rr...)
		pass := true
		for _, f := range j.filters {
			if !f(row) {
				pass = false
				break
			}
		}
		if pass {
			return row, true
		}
	}
}

type hashJoin struct {
	left        iter
	keyL        func([]relstore.Datum) relstore.Datum
	table       map[string][][]relstore.Datum
	filters     []compiledPred
	leftRow     []relstore.Datum
	matches     [][]relstore.Datum
	matchIdx    int
	built, done bool
	buildRight  func() // lazily builds the hash table on first pull
}

func newHashJoin(left, right iter, keyL, keyR func([]relstore.Datum) relstore.Datum, filters []compiledPred) iter {
	j := &hashJoin{left: left, keyL: keyL, filters: filters}
	j.buildRight = func() {
		j.table = map[string][][]relstore.Datum{}
		for {
			r, ok := right.next()
			if !ok {
				break
			}
			k := keyR(r).String()
			j.table[k] = append(j.table[k], r)
		}
	}
	return j
}

func (j *hashJoin) next() ([]relstore.Datum, bool) {
	if j.done {
		return nil, false
	}
	if !j.built {
		j.buildRight()
		j.built = true
	}
	for {
		for j.matchIdx < len(j.matches) {
			rr := j.matches[j.matchIdx]
			j.matchIdx++
			row := make([]relstore.Datum, 0, len(j.leftRow)+len(rr))
			row = append(row, j.leftRow...)
			row = append(row, rr...)
			pass := true
			for _, f := range j.filters {
				if !f(row) {
					pass = false
					break
				}
			}
			if pass {
				return row, true
			}
		}
		lr, ok := j.left.next()
		if !ok {
			j.done = true
			return nil, false
		}
		j.leftRow = lr
		j.matches = j.table[j.keyL(lr).String()]
		j.matchIdx = 0
	}
}

type sortIter struct {
	in     iter
	keys   []int
	rows   [][]relstore.Datum
	pos    int
	sorted bool
}

func (s *sortIter) next() ([]relstore.Datum, bool) {
	if !s.sorted {
		for {
			r, ok := s.in.next()
			if !ok {
				break
			}
			s.rows = append(s.rows, r)
		}
		sort.SliceStable(s.rows, func(i, j int) bool {
			for _, k := range s.keys {
				c := relstore.Compare(s.rows[i][k], s.rows[j][k])
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		s.sorted = true
	}
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

type projectIter struct {
	in      iter
	offsets []int
}

func (p *projectIter) next() ([]relstore.Datum, bool) {
	row, ok := p.in.next()
	if !ok {
		return nil, false
	}
	out := make([]relstore.Datum, len(p.offsets))
	for i, off := range p.offsets {
		out[i] = row[off]
	}
	return out, true
}

type distinctIter struct {
	in   iter
	seen map[string]bool
}

func (d *distinctIter) next() ([]relstore.Datum, bool) {
	for {
		row, ok := d.in.next()
		if !ok {
			return nil, false
		}
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte('\x00')
		}
		k := b.String()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return row, true
	}
}

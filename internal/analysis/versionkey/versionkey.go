// Package versionkey enforces the cache-key discipline the caching layers
// (PR 5) and the cost-based optimizer's cached scans (PR 8) maintain by
// hand: every insertion into a cache.LRU must use a key that folds in a
// data-version, StructVersion, or codec/options fingerprint — otherwise a
// write leaves stale entries behind that later reads will happily serve.
// MVCC snapshot-aware keys make this load-bearing: the key IS the snapshot
// pin.
//
// The check is a package-local taint analysis. Version-ness seeds from
// names — identifiers, fields and callees matching version/epoch/
// fingerprint/optsKey (or exactly `ver`) — and propagates to a fixpoint
// through assignments, string concatenation and fmt-style building, struct
// fields set from tainted values, in-package functions returning tainted
// expressions, and method calls that feed a tainted argument into a local
// builder (the strings.Builder accumulation idiom). A Put whose key
// argument is untainted is flagged, unless the inserting function first
// checks a version guard and bails (`if ver != 0 && nc.ver != ver { return }`
// — the node cache's protocol: unversioned keys, version-checked
// insertions, piggybacked purges). _test.go files are exempt; fixtures
// cache raw keys on purpose.
package versionkey

import (
	"go/ast"
	"go/types"
	"regexp"

	"mix/internal/analysis"
)

// Analyzer is the versionkey check.
var Analyzer = &analysis.Analyzer{
	Name: "versionkey",
	Doc:  "cache.LRU keys must fold in a data-version/StructVersion/options fingerprint",
	Run:  run,
}

var versionName = regexp.MustCompile(`(?i)version|epoch|fingerprint|optskey|snapshot`)

func matches(name string) bool {
	return name == "ver" || versionName.MatchString(name)
}

type tainter struct {
	pass   *analysis.Pass
	objs   map[types.Object]bool
	fields map[string]bool
	funcs  map[*types.Func]bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	t := &tainter{
		pass:   pass,
		objs:   map[types.Object]bool{},
		fields: map[string]bool{},
		funcs:  map[*types.Func]bool{},
	}

	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && !analysis.IsTestFile(pass, fd.Pos()) {
				decls = append(decls, fd)
			}
		}
	}

	// Propagate taint to a fixpoint across the package.
	for changed := true; changed; {
		changed = false
		mark := func(set map[types.Object]bool, k types.Object) {
			if k != nil && !set[k] {
				set[k] = true
				changed = true
			}
		}
		for _, fd := range decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						var rhs ast.Expr
						if len(n.Rhs) == len(n.Lhs) {
							rhs = n.Rhs[i]
						} else if len(n.Rhs) == 1 {
							rhs = n.Rhs[0]
						}
						if rhs == nil || !t.tainted(rhs) {
							continue
						}
						switch l := lhs.(type) {
						case *ast.Ident:
							mark(t.objs, t.pass.TypesInfo.ObjectOf(l))
						case *ast.SelectorExpr:
							if key, ok := analysis.FieldKey(t.pass, l); ok && !t.fields[key] {
								t.fields[key] = true
								changed = true
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) && t.tainted(n.Values[i]) {
							mark(t.objs, t.pass.TypesInfo.ObjectOf(name))
						}
					}
				case *ast.CompositeLit:
					t.fieldsFromLiteral(n, func() { changed = true })
				case *ast.CallExpr:
					// Feeding a tainted argument into a local value's method
					// taints the value: the strings.Builder accumulation
					// idiom (b.WriteString(formatVersion(...))).
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					recv, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					for _, a := range n.Args {
						if t.tainted(a) {
							mark(t.objs, t.pass.TypesInfo.ObjectOf(recv))
							break
						}
					}
				}
				return true
			})
			// Function summary: returning a tainted expression taints calls.
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj != nil && !t.funcs[obj] && t.returnsTainted(fd.Body) {
				t.funcs[obj] = true
				changed = true
			}
		}
	}

	ignored := analysis.IgnoredLines(pass)
	for _, fd := range decls {
		guarded := t.hasVersionGuard(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !t.isLRUPut(call) || len(call.Args) != 2 {
				return true
			}
			if guarded || t.tainted(call.Args[0]) {
				return true
			}
			if !ignored[pass.Position(call.Pos()).Line] {
				pass.Reportf(call.Pos(), "cache key does not fold in a data version or fingerprint: entries go stale across writes")
			}
			return true
		})
	}
	return nil, nil
}

// isLRUPut recognizes a Put method call on a (possibly instantiated)
// cache.LRU receiver.
func (t *tainter) isLRUPut(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	s := t.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "LRU"
}

// tainted reports whether e carries version-ness.
func (t *tainter) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if matches(e.Name) {
			return true
		}
		if obj := t.pass.TypesInfo.ObjectOf(e); obj != nil && t.objs[obj] {
			return true
		}
	case *ast.SelectorExpr:
		if matches(e.Sel.Name) {
			return true
		}
		if key, ok := analysis.FieldKey(t.pass, e); ok && t.fields[key] {
			return true
		}
	case *ast.CallExpr:
		if matches(analysis.CalleeName(e)) {
			return true
		}
		if f := analysis.StaticCallee(t.pass, e); f != nil && t.funcs[f] {
			return true
		}
		// A call over tainted inputs builds a tainted value: Sprintf,
		// strconv formatting, b.String() on a tainted builder.
		for _, a := range e.Args {
			if t.tainted(a) {
				return true
			}
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && t.tainted(sel.X) {
			return true
		}
	case *ast.BinaryExpr:
		return t.tainted(e.X) || t.tainted(e.Y)
	case *ast.ParenExpr:
		return t.tainted(e.X)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.IndexExpr:
		return t.tainted(e.X) || t.tainted(e.Index)
	}
	return false
}

// fieldsFromLiteral taints struct fields initialized from tainted values in
// a composite literal (&fillCursor{key: versionedKey}).
func (t *tainter) fieldsFromLiteral(lit *ast.CompositeLit, onChange func()) {
	typ := t.pass.TypesInfo.TypeOf(lit)
	if typ == nil {
		return
	}
	for {
		if p, ok := typ.(*types.Pointer); ok {
			typ = p.Elem()
			continue
		}
		break
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !t.tainted(kv.Value) {
			continue
		}
		fk := named.Obj().Name() + "." + key.Name
		if !t.fields[fk] {
			t.fields[fk] = true
			onChange()
		}
	}
}

// returnsTainted reports whether any return of body (excluding nested
// closures) yields a tainted expression.
func (t *tainter) returnsTainted(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if t.tainted(r) {
				found = true
			}
		}
		return true
	})
	return found
}

// hasVersionGuard reports whether body checks a version condition and bails:
// an if whose condition mentions version state and whose body returns. That
// is the node cache's insertion protocol — the version check happens before
// the Put instead of inside the key.
func (t *tainter) hasVersionGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !t.tainted(ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.ReturnStmt); ok {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

package wire

import "testing"

// TestServeReqPanicReleasesInflight pins the serveReq fix found by the
// quotabalance analyzer: a panic inside handle (here: an op on a session
// with no mediator) must not leave the inflight charge behind. Shedding
// skips in-flight sessions and Shutdown waits for them to drain, so one
// leaked unit would pin the session as busy forever and stall graceful
// drain.
func TestServeReqPanicReleasesInflight(t *testing.T) {
	srv := &Server{}
	sess := &session{srv: srv, nodes: map[int64]sessEntry{}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the op to panic on a session with no mediator")
			}
		}()
		srv.serveReq(sess, Request{Op: "open", View: "rootv"})
	}()
	if got := sess.inflight.Load(); got != 0 {
		t.Fatalf("inflight after a panicking op = %d, want 0 (charge leaked)", got)
	}
}

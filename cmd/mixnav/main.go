// Command mixnav is an interactive QDOM session — a tiny text-mode BBQ
// (the paper's front-end): navigate the virtual view with the d/r/u
// commands of Section 2 and issue in-place queries with q, watching how
// little the sources ship.
//
//	$ mixnav
//	[&rootv list] (0 shipped)> d
//	[&($V2,g(&C000000)) CustRec] (4 shipped)> q FOR $O IN document(root)/OrderInfo WHERE $O/orders/value < 500 RETURN $O
//
// Commands: d (down), r (right), u (up), l (label), v (value), id,
// p (print subtree — materializes it!), q <query> (in-place query; the
// session moves to the new result's root), stats, help, quit.
package main

import (
	"flag"
	"fmt"
	"os"

	"mix"
	"mix/internal/repl"
	"mix/internal/workload"
)

func main() {
	n := flag.Int("n", 200, "generated customers")
	flag.Parse()

	med := mix.New()
	med.AddRelationalSource(workload.ScaleDB("db1", *n, 5, 42))
	fail(med.AliasSource("&root1", "&db1.customer"))
	fail(med.AliasSource("&root2", "&db1.orders"))
	_, err := med.DefineView("rootv", workload.Q1)
	fail(err)

	fmt.Printf("MIX interactive navigation over the CustRec view (%d customers).\n", *n)
	fmt.Println("Commands: d r u l v id p q <query> stats help quit")

	session, err := repl.New(med, "rootv")
	fail(err)
	fail(session.Run(os.Stdin, os.Stdout))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixnav:", err)
		os.Exit(1)
	}
}
